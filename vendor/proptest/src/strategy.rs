//! The [`Strategy`] trait and the combinators the workspace's property
//! tests use: ranges, tuples, [`Just`], [`Map`], [`OneOf`] and boxing.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A generator of test-case values (generation only — no shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy (`Strategy::boxed`).
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among several boxed strategies (`prop_oneof!`).
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// A strategy drawing uniformly from `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(3, 0);
        for _ in 0..500 {
            let x = (5u32..9).generate(&mut rng);
            assert!((5..9).contains(&x));
            let y = (-3i32..4).generate(&mut rng);
            assert!((-3..4).contains(&y));
            let z = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut rng = TestRng::for_case(4, 0);
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }

    #[test]
    fn oneof_draws_every_arm() {
        let s = OneOf::new(vec![
            Just(0u8).boxed(),
            Just(1u8).boxed(),
            Just(2u8).boxed(),
        ]);
        let mut rng = TestRng::for_case(5, 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::for_case(6, 0);
        let (a, b, c) = (0u32..4, 10u32..14, 0.0f64..1.0).generate(&mut rng);
        assert!(a < 4);
        assert!((10..14).contains(&b));
        assert!((0.0..1.0).contains(&c));
    }
}
