//! Test-runner plumbing: case configuration, the failure type returned by
//! `prop_assert*`, and the deterministic RNG cases are generated from.

use std::fmt;

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A failed property case; carried back to the runner by `prop_assert*`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fail the current case with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a hash of a byte string; used to derive a per-test seed from the
/// test function's name so every property has an independent stream.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    hash
}

/// Deterministic generation stream (SplitMix64).
///
/// Seeded from `(test-name hash, case index)` so that failures reproduce
/// run-to-run and cases are independent of each other.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The stream for one `(test, case)` pair.
    pub fn for_case(test_seed: u64, case: u32) -> Self {
        let mut rng = TestRng {
            state: test_seed ^ (case as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        };
        // Warm up so nearby case indices decorrelate.
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (0 when `bound` is 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded draw; negligible bias for test purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` from 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fair coin flip.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case(42, 7);
        let mut b = TestRng::for_case(42, 7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn cases_decorrelate() {
        let mut a = TestRng::for_case(42, 0);
        let mut b = TestRng::for_case(42, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_case(1, 0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn unit_in_range() {
        let mut rng = TestRng::for_case(2, 0);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
