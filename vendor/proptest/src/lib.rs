//! Offline mini-proptest.
//!
//! The build container has no crates.io mirror, so the workspace vendors a
//! small, self-contained property-testing shim that exposes the subset of
//! the real `proptest` API the test suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! * [`strategy::Strategy`] with `prop_map` and `boxed`,
//! * range, tuple, [`strategy::Just`], [`arbitrary::any`],
//!   [`collection::vec`], [`option::of`] / [`option::weighted`] and
//!   [`prop_oneof!`] strategies.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports the generated inputs via
//!   `Debug` in the panic message but is not minimised;
//! * **deterministic generation** — cases are generated from a SplitMix64
//!   stream seeded by the test name, so failures always reproduce.
//!
//! Swapping the real crate back in is a one-line `Cargo.toml` change; the
//! call sites compile unchanged against both.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define deterministic property tests.
///
/// Accepts the same surface syntax as real proptest:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn it_holds(x in 0u32..100, v in proptest::collection::vec(0u8..4, 1..9)) {
///         prop_assert!(x < 100);
///         prop_assert_eq!(v.len(), v.len());
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let seed = $crate::test_runner::fnv1a(stringify!($name).as_bytes());
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(seed, case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

/// Assert a condition inside a [`proptest!`] body, failing the case (not
/// unwinding) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert two values compare equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}: `{:?} == {:?}`",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Assert two values compare unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} != {:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}: `{:?} != {:?}`",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Choose uniformly between several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
