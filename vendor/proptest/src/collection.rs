//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A range of collection sizes. Built from a `usize` (exact size) or a
/// `Range<usize>` (half-open, like real proptest).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors whose elements come from `element` and whose length
/// is drawn uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_len_in_range() {
        let s = vec(0u32..5, 2..6);
        let mut rng = TestRng::for_case(9, 0);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn vec_exact_len() {
        let s = vec(0u32..5, 8usize);
        let mut rng = TestRng::for_case(10, 0);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng).len(), 8);
        }
    }
}
