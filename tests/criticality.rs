//! The §6 "multiple criticalness" extension end to end.

use rtx::policies::{Cca, Criticality, EdfHp};
use rtx::rtdb::{run_replications, run_simulation, SimConfig};

fn cfg(rate: f64, frac: f64, n: usize) -> SimConfig {
    let mut cfg = SimConfig::mm_base();
    cfg.workload.high_criticality_fraction = frac;
    cfg.run.arrival_rate_tps = rate;
    cfg.run.num_transactions = n;
    cfg
}

#[test]
fn single_class_workloads_report_one_class() {
    let s = run_simulation(&cfg(8.0, 0.0, 200), &Cca::base());
    assert_eq!(s.miss_percent_by_class.len(), 1);
    assert!((s.miss_percent_by_class[0] - s.miss_percent).abs() < 1e-9);
}

#[test]
fn zero_fraction_is_bit_identical_to_base() {
    let c = cfg(8.0, 0.0, 200);
    let a = run_simulation(&c, &Cca::base());
    let b = run_simulation(&c, &Criticality::new(Cca::base()));
    assert_eq!(a, b, "class 0 everywhere → wrapper is transparent");
}

#[test]
fn critical_class_is_protected_under_overload() {
    let c = cfg(10.0, 0.2, 400);
    let mut hi_total = 0.0;
    let mut lo_total = 0.0;
    for seed in 0..5 {
        let mut run_cfg = c.clone();
        run_cfg.run.seed = seed;
        let s = run_simulation(&run_cfg, &Criticality::new(Cca::base()));
        assert_eq!(s.committed, 400);
        let lo = s.miss_percent_by_class.first().copied().unwrap_or(0.0);
        let hi = s.miss_percent_by_class.get(1).copied().unwrap_or(0.0);
        hi_total += hi;
        lo_total += lo;
    }
    assert!(
        hi_total / 5.0 < 5.0,
        "critical class should nearly always meet deadlines: {}",
        hi_total / 5.0
    );
    assert!(
        lo_total > hi_total,
        "the normal class pays for the protection"
    );
}

#[test]
fn class_blind_policy_spreads_misses_evenly() {
    // Without the wrapper, both classes miss at similar rates.
    let c = cfg(10.0, 0.3, 400);
    let mut hi = 0.0;
    let mut lo = 0.0;
    for seed in 0..5 {
        let mut run_cfg = c.clone();
        run_cfg.run.seed = seed;
        let s = run_simulation(&run_cfg, &Cca::base());
        lo += s.miss_percent_by_class.first().copied().unwrap_or(0.0);
        hi += s.miss_percent_by_class.get(1).copied().unwrap_or(0.0);
    }
    let (hi, lo) = (hi / 5.0, lo / 5.0);
    assert!(
        (hi - lo).abs() < 0.6 * lo.max(hi).max(1.0),
        "class-blind CCA should not favour a class strongly: hi {hi} lo {lo}"
    );
}

#[test]
fn criticality_preserves_cca_theorems() {
    let c = cfg(9.0, 0.2, 300);
    let s = run_simulation(&c, &Criticality::new(Cca::base()));
    assert_eq!(s.lock_waits, 0, "Theorem 1 survives the class wrapper");
    assert_eq!(s.deadlock_resolutions, 0);
}

#[test]
fn within_class_cca_still_beats_edf() {
    let c = cfg(9.0, 0.2, 400);
    let cca = run_replications(&c, &Criticality::new(Cca::base()), 6);
    let edf = run_replications(&c, &Criticality::new(EdfHp), 6);
    assert!(
        cca.miss_percent.mean <= edf.miss_percent.mean + 0.5,
        "Crit<CCA> {} vs Crit<EDF> {}",
        cca.miss_percent.mean,
        edf.miss_percent.mean
    );
}
