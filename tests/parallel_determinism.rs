//! Cross-thread-count determinism of the replication runner.
//!
//! Replications are pure functions of their seed and the merge folds
//! per-seed summaries in seed order, so every [`Parallelism`] setting
//! must yield a **bit-identical** [`AggregateSummary`] — not merely
//! statistically equivalent. These tests pin that guarantee for both the
//! paper's baseline (EDF-HP) and CCA on main-memory and disk-resident
//! configurations.

use rtx_core::{Cca, EdfHp};
use rtx_rtdb::policy::Policy;
use rtx_rtdb::runner::{
    run_replications, run_replications_with, AggregateSummary, Parallelism, ReplicationOptions,
};
use rtx_rtdb::SimConfig;

/// Assert every estimate of two aggregates is bit-identical (mean,
/// half-width, and replication count).
fn assert_identical(a: &AggregateSummary, b: &AggregateSummary) {
    assert_eq!(a.policy, b.policy);
    assert_eq!(a.replications, b.replications);
    for (la, lb) in [
        (a.miss_percent, b.miss_percent),
        (a.mean_lateness_ms, b.mean_lateness_ms),
        (a.mean_signed_lateness_ms, b.mean_signed_lateness_ms),
        (a.restarts_per_txn, b.restarts_per_txn),
        (a.noncontributing_aborts, b.noncontributing_aborts),
        (a.mean_plist_len, b.mean_plist_len),
        (a.cpu_utilization, b.cpu_utilization),
        (a.disk_utilization, b.disk_utilization),
        (a.mean_response_ms, b.mean_response_ms),
        (a.rejected_percent, b.rejected_percent),
        (a.injected_io_faults, b.injected_io_faults),
        (a.io_retries, b.io_retries),
        (a.io_exhausted_aborts, b.io_exhausted_aborts),
        (a.wasted_disk_hold_ms, b.wasted_disk_hold_ms),
    ] {
        assert_eq!(la.mean.to_bits(), lb.mean.to_bits(), "{}: mean", a.policy);
        assert_eq!(
            la.half_width.to_bits(),
            lb.half_width.to_bits(),
            "{}: half-width",
            a.policy
        );
        assert_eq!(la.n, lb.n);
    }
}

fn check_all_parallelism_settings(cfg: &SimConfig, policy: &dyn Policy, reps: usize) {
    let serial = run_replications_with(cfg, policy, reps, &ReplicationOptions::serial());
    for parallelism in [
        Parallelism::Threads(1),
        Parallelism::Threads(4),
        Parallelism::Auto,
    ] {
        let opts = ReplicationOptions {
            parallelism,
            timer: None,
            shards: None,
        };
        let parallel = run_replications_with(cfg, policy, reps, &opts);
        assert_identical(&serial, &parallel);
    }
}

#[test]
fn mm_edf_identical_across_thread_counts() {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 120;
    cfg.run.arrival_rate_tps = 8.0;
    check_all_parallelism_settings(&cfg, &EdfHp, 6);
}

#[test]
fn mm_cca_identical_across_thread_counts() {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 120;
    cfg.run.arrival_rate_tps = 8.0;
    check_all_parallelism_settings(&cfg, &Cca::base(), 6);
}

#[test]
fn mm_cca_high_mpl_identical_across_thread_counts() {
    // Far past saturation the P-list and conflict caches are at their
    // busiest; the incremental bookkeeping must not introduce any
    // thread-count-visible state.
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 200;
    cfg.run.arrival_rate_tps = 40.0;
    check_all_parallelism_settings(&cfg, &Cca::base(), 4);
}

#[test]
fn disk_edf_identical_across_thread_counts() {
    let mut cfg = SimConfig::disk_base();
    cfg.run.num_transactions = 80;
    cfg.run.arrival_rate_tps = 4.0;
    check_all_parallelism_settings(&cfg, &EdfHp, 5);
}

#[test]
fn disk_cca_identical_across_thread_counts() {
    let mut cfg = SimConfig::disk_base();
    cfg.run.num_transactions = 80;
    cfg.run.arrival_rate_tps = 4.0;
    check_all_parallelism_settings(&cfg, &Cca::base(), 5);
}

#[test]
fn parallel_default_api_matches_explicit_serial() {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 100;
    cfg.run.arrival_rate_tps = 6.0;
    let default_api = run_replications(&cfg, &EdfHp, 4);
    let explicit = run_replications_with(&cfg, &EdfHp, 4, &ReplicationOptions::auto());
    assert_identical(&default_api, &explicit);
}

#[test]
fn more_workers_than_replications_is_safe() {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 60;
    let serial = run_replications_with(&cfg, &EdfHp, 2, &ReplicationOptions::serial());
    let wide = run_replications_with(&cfg, &EdfHp, 2, &ReplicationOptions::threads(16));
    assert_identical(&serial, &wide);
}
