//! Policy-equivalence and determinism guarantees across the crates.

use rtx::policies::{Cca, EdfHp};
use rtx::rtdb::{run_simulation, SimConfig};

fn mm(seed: u64, rate: f64, n: usize) -> SimConfig {
    let mut cfg = SimConfig::mm_base();
    cfg.run.seed = seed;
    cfg.run.arrival_rate_tps = rate;
    cfg.run.num_transactions = n;
    cfg
}

fn disk(seed: u64, rate: f64, n: usize) -> SimConfig {
    let mut cfg = SimConfig::disk_base();
    cfg.run.seed = seed;
    cfg.run.arrival_rate_tps = rate;
    cfg.run.num_transactions = n;
    cfg
}

/// §3.3.3: "if the parameter penalty-weight is assigned 0, it produces
/// the EDF-HP for main memory database". With `w = 0` the priority
/// formulas coincide exactly, so — up to the IOwait restriction, which
/// only matters with a disk — the *entire trajectory* must match.
#[test]
fn cca_weight_zero_equals_edf_hp_on_main_memory() {
    struct EdfLikeCca;
    impl rtx::rtdb::Policy for EdfLikeCca {
        fn name(&self) -> &str {
            "CCA(w=0) sans restriction"
        }
        fn priority(
            &self,
            t: &rtx::rtdb::Transaction,
            v: &rtx::rtdb::SystemView<'_>,
        ) -> rtx::rtdb::Priority {
            Cca::new(0.0).priority(t, v)
        }
        // Main memory has no IO waits, so this flag is inert; disabling it
        // makes the policies bit-identical by construction.
        fn iowait_restrict(&self) -> bool {
            false
        }
    }
    for seed in 0..5 {
        for rate in [3.0, 8.0, 10.0] {
            let cfg = mm(seed, rate, 250);
            let edf = run_simulation(&cfg, &EdfHp);
            let cca0 = run_simulation(&cfg, &EdfLikeCca);
            // The policies cache differently (EDF-HP is Static, the CCA
            // formula is not), so compare everything but the scheduler
            // counters: the *trajectory* must still be bit-identical.
            assert_eq!(
                edf.sans_sched_stats(),
                cca0.sans_sched_stats(),
                "divergence at seed {seed} rate {rate}"
            );
        }
    }
}

/// On main memory even the real CCA(w=0) — with its (inert) IOwait flag —
/// matches EDF-HP exactly.
#[test]
fn real_cca_weight_zero_matches_edf_hp_on_main_memory() {
    for seed in 0..3 {
        let cfg = mm(seed, 9.0, 250);
        let edf = run_simulation(&cfg, &EdfHp);
        let cca0 = run_simulation(&cfg, &Cca::new(0.0));
        assert_eq!(edf.sans_sched_stats(), cca0.sans_sched_stats());
    }
}

/// On disk the IOwait restriction is CCA's second mechanism, so CCA(w=0)
/// and EDF-HP legitimately diverge — but only in CCA's favour on
/// noncontributing aborts.
#[test]
fn cca_weight_zero_differs_from_edf_on_disk_via_iowait() {
    let cfg = disk(1, 5.0, 150);
    let edf = run_simulation(&cfg, &EdfHp);
    let cca0 = run_simulation(&cfg, &Cca::new(0.0));
    assert!(
        cca0.noncontributing_aborts <= edf.noncontributing_aborts,
        "IOwait-schedule must not create noncontributing aborts"
    );
    assert_eq!(cca0.lock_waits, 0);
}

#[test]
fn runs_are_bit_deterministic() {
    for cfg in [mm(7, 8.0, 200), disk(7, 5.0, 100)] {
        let a = run_simulation(&cfg, &Cca::base());
        let b = run_simulation(&cfg, &Cca::base());
        assert_eq!(a, b);
    }
}

#[test]
fn seeds_change_outcomes() {
    let a = run_simulation(&mm(0, 8.0, 200), &Cca::base());
    let b = run_simulation(&mm(1, 8.0, 200), &Cca::base());
    assert_ne!(a, b);
}

#[test]
fn policy_choice_changes_trajectory_under_contention() {
    let cfg = mm(5, 9.0, 300);
    let edf = run_simulation(&cfg, &EdfHp);
    let cca = run_simulation(&cfg, &Cca::base());
    assert_ne!(edf, cca, "penalty term should alter scheduling decisions");
    // But both commit the same workload.
    assert_eq!(edf.committed, cca.committed);
}
