//! The paper's §3.3.4 properties, observed on real runs.
//!
//! * **Theorem 1 (deadlock freedom)**: "there exist no deadlock under CCA
//!   scheduling" — because "there is no lock wait in CCA". The engine
//!   implements HP as wound-wait and counts every lock wait, so the
//!   theorem is directly observable: `lock_waits == 0` on every CCA run.
//! * **Lemma 1 (no priority reversal)**: the runner always outranks lock
//!   holders, which is exactly the condition for `lock_waits == 0`.
//! * **Theorem 2 (no circular abort)**: circular aborts would prevent
//!   progress; every run committing all its transactions under heavy
//!   contention is the observable consequence.

use rtx::policies::{Cca, EdfHp, EdfWait};
use rtx::rtdb::{run_simulation, run_simulation_validated, SimConfig};

fn mm(seed: u64, rate: f64, n: usize) -> SimConfig {
    let mut cfg = SimConfig::mm_base();
    cfg.run.seed = seed;
    cfg.run.arrival_rate_tps = rate;
    cfg.run.num_transactions = n;
    cfg
}

fn disk(seed: u64, rate: f64, n: usize) -> SimConfig {
    let mut cfg = SimConfig::disk_base();
    cfg.run.seed = seed;
    cfg.run.arrival_rate_tps = rate;
    cfg.run.num_transactions = n;
    cfg
}

#[test]
fn theorem1_no_lock_wait_under_cca_main_memory() {
    for seed in 0..5 {
        for rate in [4.0, 8.0, 10.0] {
            let s = run_simulation(&mm(seed, rate, 300), &Cca::base());
            assert_eq!(
                s.lock_waits, 0,
                "CCA lock-waited (seed {seed}, rate {rate}) — Lemma 1 violated"
            );
        }
    }
}

#[test]
fn theorem1_no_lock_wait_under_cca_disk() {
    for seed in 0..5 {
        for rate in [3.0, 5.0, 7.0] {
            let s = run_simulation(&disk(seed, rate, 150), &Cca::base());
            assert_eq!(
                s.lock_waits, 0,
                "CCA lock-waited (seed {seed}, rate {rate}) — Theorem 1 violated"
            );
        }
    }
}

#[test]
fn theorem1_holds_for_every_penalty_weight() {
    for w in [0.0, 0.5, 2.0, 10.0] {
        let s = run_simulation(&disk(1, 5.0, 120), &Cca::new(w));
        assert_eq!(s.lock_waits, 0, "weight {w}");
    }
}

#[test]
fn edf_hp_never_lock_waits_on_main_memory() {
    // Without IO waits the runner is always the global maximum under any
    // static priority, so even EDF-HP never blocks in main memory.
    for seed in 0..5 {
        let s = run_simulation(&mm(seed, 10.0, 300), &EdfHp);
        assert_eq!(s.lock_waits, 0);
    }
}

#[test]
fn edf_hp_does_lock_wait_on_disk() {
    // The contrast that makes Theorem 1 meaningful: EDF-HP's unrestricted
    // IO-wait secondaries hit the blocked TH's locks and must wait.
    let mut total = 0;
    for seed in 0..5 {
        total += run_simulation(&disk(seed, 5.0, 150), &EdfHp).lock_waits;
    }
    assert!(
        total > 0,
        "expected EDF-HP to produce lock waits on disk workloads"
    );
}

#[test]
fn theorem2_progress_under_heavy_contention() {
    // Circular aborts would livelock; all-commit under maximal contention
    // (db of 5 items, every pair conflicts) shows none occur.
    let mut cfg = mm(3, 10.0, 200);
    cfg.workload.db_size = 5;
    for policy in [&Cca::base() as &dyn rtx::rtdb::Policy, &EdfHp, &EdfWait] {
        let s = run_simulation(&cfg, policy);
        assert_eq!(s.committed, 200, "{} stalled", policy.name());
    }
}

#[test]
fn engine_invariants_hold_under_all_policies() {
    let cfg = disk(2, 5.0, 80);
    for policy in [&Cca::base() as &dyn rtx::rtdb::Policy, &EdfHp, &EdfWait] {
        let s = run_simulation_validated(&cfg, policy);
        assert_eq!(s.committed, 80, "{}", policy.name());
    }
    let cfg = mm(2, 9.0, 120);
    for policy in [&Cca::base() as &dyn rtx::rtdb::Policy, &EdfHp] {
        let s = run_simulation_validated(&cfg, policy);
        assert_eq!(s.committed, 120, "{}", policy.name());
    }
}

#[test]
fn cca_never_needs_the_deadlock_resolver() {
    // Theorem 1 again, from the resolver's perspective: CCA (and the
    // static-priority policies) never wedge; the engine's deadlock
    // resolver must stay untouched.
    for seed in 0..5 {
        for cfg in [mm(seed, 10.0, 200), disk(seed, 6.0, 120)] {
            let cca = run_simulation(&cfg, &Cca::base());
            assert_eq!(cca.deadlock_resolutions, 0);
            assert_eq!(cca.starvation_shields, 0, "CCA never livelocks");
            let edf = run_simulation(&cfg, &EdfHp);
            assert_eq!(edf.deadlock_resolutions, 0);
            assert_eq!(edf.starvation_shields, 0, "EDF-HP never livelocks");
        }
    }
}

#[test]
fn lsf_can_actually_deadlock() {
    // §2: hybrid/continuous-evaluation schemes "still have deadlock
    // problems" — LSF's slack ordering shifts as time passes and work
    // completes, so wound-wait can wedge into a wait cycle. The engine
    // detects and resolves these; at least one configuration in this
    // sweep must exhibit one, making the paper's criticism observable.
    use rtx::policies::Lsf;
    let mut total = 0;
    for seed in 0..10 {
        let s = run_simulation(&mm(seed, 10.0, 300), &Lsf);
        assert_eq!(s.committed, 300, "resolver must keep LSF live");
        total += s.deadlock_resolutions;
    }
    assert!(
        total > 0,
        "expected LSF to deadlock at least once across the sweep"
    );
}

#[test]
fn edf_wait_all_but_eliminates_aborts() {
    // §3.3.3: w = ∞ "produces the EDF-Wait … a value large enough so that
    // transaction abort may not happen". Aborts of *partially executed*
    // work should (nearly) vanish relative to EDF-HP.
    let cfg = mm(4, 8.0, 300);
    let edf = run_simulation(&cfg, &EdfHp);
    let wait = run_simulation(&cfg, &EdfWait);
    assert!(
        wait.restarts_total <= edf.restarts_total / 2,
        "EDF-Wait restarts {} not well below EDF-HP's {}",
        wait.restarts_total,
        edf.restarts_total
    );
}
