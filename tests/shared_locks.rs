//! The §6 shared-lock extension, end to end: read-mode updates take
//! shared locks, lowering contention; all engine invariants and the CCA
//! theorems continue to hold.

use rtx::policies::{Cca, EdfHp};
use rtx::rtdb::locks::LockMode;
use rtx::rtdb::workload::TypeTable;
use rtx::rtdb::{run_replications, run_simulation, run_simulation_validated, SimConfig};
use rtx::sim::rng::StreamSeeder;

fn read_heavy(rate: f64, read_prob: f64, n: usize, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::mm_base();
    cfg.workload.read_probability = read_prob;
    cfg.run.arrival_rate_tps = rate;
    cfg.run.num_transactions = n;
    cfg.run.seed = seed;
    cfg
}

#[test]
fn type_table_draws_modes() {
    let cfg = read_heavy(8.0, 0.5, 100, 1);
    let table = TypeTable::generate(&cfg, &StreamSeeder::new(1));
    let mut reads = 0usize;
    let mut total = 0usize;
    for ty in table.types() {
        assert_eq!(ty.modes.len(), ty.items.len());
        reads += ty.modes.iter().filter(|&&m| m == LockMode::Shared).count();
        total += ty.modes.len();
    }
    let frac = reads as f64 / total as f64;
    assert!((frac - 0.5).abs() < 0.1, "read fraction {frac}");
    // Write-only config keeps modes empty (fast path).
    let plain = SimConfig::mm_base();
    let table = TypeTable::generate(&plain, &StreamSeeder::new(1));
    assert!(table.types().iter().all(|t| t.modes.is_empty()));
}

#[test]
fn read_probability_zero_is_bit_identical_to_paper_model() {
    let a = run_simulation(&read_heavy(8.0, 0.0, 250, 3), &Cca::base());
    let mut plain = SimConfig::mm_base();
    plain.run.arrival_rate_tps = 8.0;
    plain.run.num_transactions = 250;
    plain.run.seed = 3;
    let b = run_simulation(&plain, &Cca::base());
    assert_eq!(a, b);
}

#[test]
fn invariants_hold_with_shared_locks() {
    for seed in 0..3 {
        let cfg = read_heavy(9.0, 0.5, 150, seed);
        let cca = run_simulation_validated(&cfg, &Cca::base());
        assert_eq!(cca.committed, 150);
        assert_eq!(cca.lock_waits, 0, "Theorem 1 with shared locks");
        assert_eq!(cca.deadlock_resolutions, 0);
        let edf = run_simulation_validated(&cfg, &EdfHp);
        assert_eq!(edf.committed, 150);
    }
}

#[test]
fn more_reads_means_fewer_restarts() {
    let mut restarts = Vec::new();
    for read_prob in [0.0, 0.5, 0.9] {
        let cfg = read_heavy(8.0, read_prob, 400, 0);
        let agg = run_replications(&cfg, &EdfHp, 6);
        restarts.push(agg.restarts_per_txn.mean);
    }
    assert!(
        restarts[2] < restarts[0],
        "read-read compatibility must cut restarts: {restarts:?}"
    );
    assert!(
        restarts[1] <= restarts[0] + 0.02,
        "monotone-ish in read fraction: {restarts:?}"
    );
}

#[test]
fn reads_do_not_hurt_and_cut_wasted_work() {
    // At 9 tps the CPU load (72%) dominates the miss rate, so shared
    // locks mostly cut *wasted* work (restarts) rather than misses: the
    // miss rate must not regress materially, and the abort rate must
    // drop clearly.
    let write_only = run_replications(&read_heavy(9.0, 0.0, 400, 0), &EdfHp, 6);
    let read_heavy_run = run_replications(&read_heavy(9.0, 0.8, 400, 0), &EdfHp, 6);
    assert!(
        read_heavy_run.miss_percent.mean <= write_only.miss_percent.mean + 2.0,
        "read-heavy {} vs write-only {}",
        read_heavy_run.miss_percent.mean,
        write_only.miss_percent.mean
    );
    assert!(
        read_heavy_run.restarts_per_txn.mean < 0.9 * write_only.restarts_per_txn.mean,
        "restarts: read-heavy {} vs write-only {}",
        read_heavy_run.restarts_per_txn.mean,
        write_only.restarts_per_txn.mean
    );
}

#[test]
fn cca_still_at_or_below_edf_with_shared_locks() {
    let cfg = read_heavy(9.0, 0.4, 400, 0);
    let edf = run_replications(&cfg, &EdfHp, 8);
    let cca = run_replications(&cfg, &Cca::base(), 8);
    assert!(
        cca.miss_percent.mean <= edf.miss_percent.mean + 1.0,
        "CCA {} vs EDF {}",
        cca.miss_percent.mean,
        edf.miss_percent.mean
    );
}

#[test]
fn written_is_subset_of_accessed_oracle() {
    // Mode-aware oracle sanity via the public transaction API.
    use rtx::preanalysis::TypeId;
    use rtx::preanalysis::{DataSet, ItemId};
    use rtx::rtdb::{Stage, Transaction, TxnId, TxnState};
    use rtx::sim::{SimDuration, SimTime};
    let t = Transaction {
        id: TxnId(0),
        ty: TypeId(0),
        arrival: SimTime::ZERO,
        deadline: SimTime::from_ms(10.0),
        resource_time: SimDuration::from_ms(8.0),
        items: vec![ItemId(0), ItemId(1)],
        io_pattern: vec![],
        modes: vec![LockMode::Shared, LockMode::Exclusive],
        update_time: SimDuration::from_ms(4.0),
        might_access: [0u32, 1].into_iter().collect(),
        state: TxnState::Ready,
        progress: 0,
        stage: Stage::Lock,
        cpu_left: SimDuration::ZERO,
        burst_start: SimTime::ZERO,
        accessed: DataSet::new(),
        written: DataSet::new(),
        service: SimDuration::ZERO,
        restarts: 0,
        waiting_for: None,
        decision: None,
        criticality: 0,
        doomed: false,
        doomed_at: SimTime::ZERO,
        io_retries: 0,
        retry_token: 0,
        finish: None,
    };
    assert_eq!(t.current_mode(), LockMode::Shared);
    // Might it write into {0}? Update 0 is a read; update 1 (item 1) is
    // the only write.
    let set0: DataSet = [0u32].into_iter().collect();
    let set1: DataSet = [1u32].into_iter().collect();
    assert!(!t.might_write_into(&set0));
    assert!(t.might_write_into(&set1));
    // conflicts_with is symmetric and write-aware.
    let mut reader = t.clone();
    reader.id = TxnId(1);
    reader.items = vec![ItemId(0)];
    reader.modes = vec![LockMode::Shared];
    reader.might_access = set0.clone();
    assert!(
        !t.conflicts_with(&reader),
        "two readers of item 0 do not conflict"
    );
    let mut writer = reader.clone();
    writer.id = TxnId(2);
    writer.modes = vec![LockMode::Exclusive];
    assert!(t.conflicts_with(&writer), "reader vs writer of item 0");
    assert!(writer.conflicts_with(&t));
}
