//! Oracle equivalence of the incremental scheduling core.
//!
//! [`CacheMode::AlwaysRecompute`] preserves the pre-incremental engine
//! verbatim — full rescans of `active` for the P-list, ready counts, and
//! feasibility, with no priority or conflict memoization. `Incremental`
//! is the production path. `Verify` runs the incremental path while
//! asserting at every use that each cached priority is **bit-identical**
//! to a freshly computed one and that the maintained P-list and ready
//! counters equal full scans — i.e. the per-decision winner is checked
//! against the recompute oracle inside the engine itself.
//!
//! These tests pin that all three modes produce identical trajectories
//! and metrics (modulo the scheduler's own instrumentation counters) on
//! arbitrary workloads: random item sets, shared locks, decision
//! narrowing, disk IO, injected faults, and admission control.

use proptest::prelude::*;
use rtx::policies::{Cca, EdfHp, EdfWait, Lsf};
use rtx::preanalysis::{DataSet, ItemId, TypeId};
use rtx::rtdb::engine::{
    run_simulation_from_mode, run_simulation_profiled_with_mode, run_simulation_with_mode,
};
use rtx::rtdb::locks::LockMode;
use rtx::rtdb::{
    AdmissionConfig, CacheMode, DecisionSpec, Policy, ReplaySource, RunSummary, SimConfig, Stage,
    Transaction, TxnId, TxnState,
};
use rtx::sim::fault::{Brownout, FaultPlan};
use rtx::sim::{SimDuration, SimTime};

/// Specification of one random transaction (mirrors `prop_system.rs`).
#[derive(Debug, Clone)]
struct TxnSpec {
    gap_ms: f64,
    items: Vec<u16>,
    slack: f64,
    io: Vec<bool>,
    reads: Vec<bool>,
    branch_at: Option<usize>,
}

const DB: u64 = 12;

fn txn_spec() -> impl Strategy<Value = TxnSpec> {
    (
        0.1f64..50.0,
        proptest::collection::vec(0u16..DB as u16, 1..8),
        0.1f64..4.0,
        proptest::collection::vec(any::<bool>(), 8),
        proptest::collection::vec(any::<bool>(), 8),
        proptest::option::of(0usize..4),
    )
        .prop_map(|(gap_ms, mut items, slack, io, reads, branch_at)| {
            items.dedup();
            TxnSpec {
                gap_ms,
                items,
                slack,
                io,
                reads,
                branch_at,
            }
        })
}

/// Materialize specs into engine transactions.
fn build(specs: &[TxnSpec], cfg: &SimConfig, with_modes: bool) -> Vec<Transaction> {
    let mut clock = SimTime::ZERO;
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            clock += SimDuration::from_ms(spec.gap_ms);
            let items: Vec<ItemId> = spec.items.iter().map(|&x| ItemId(x as u32)).collect();
            let update_time = SimDuration::from_ms(2.0);
            let io_pattern: Vec<bool> = if cfg.system.disk.is_some() {
                items.iter().zip(&spec.io).map(|(_, &b)| b).collect()
            } else {
                Vec::new()
            };
            let io_time =
                SimDuration::from_ms(25.0) * io_pattern.iter().filter(|&&b| b).count() as u64;
            let resource_time = update_time * items.len() as u64 + io_time;
            let might: DataSet = items.iter().copied().collect();
            let modes: Vec<LockMode> = if with_modes {
                items
                    .iter()
                    .zip(&spec.reads)
                    .map(|(_, &r)| {
                        if r {
                            LockMode::Shared
                        } else {
                            LockMode::Exclusive
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let decision = spec.branch_at.and_then(|at| {
                (at + 1 < items.len()).then(|| DecisionSpec {
                    after_update: at + 1,
                    full: might.clone(),
                    narrowed: might.clone(),
                })
            });
            Transaction {
                id: TxnId(i as u32),
                ty: TypeId(0),
                arrival: clock,
                deadline: clock + resource_time.scale(1.0 + spec.slack),
                resource_time,
                items,
                io_pattern,
                modes,
                update_time,
                might_access: might,
                state: TxnState::Ready,
                progress: 0,
                stage: Stage::Lock,
                cpu_left: SimDuration::ZERO,
                burst_start: SimTime::ZERO,
                accessed: DataSet::new(),
                written: DataSet::new(),
                service: SimDuration::ZERO,
                restarts: 0,
                waiting_for: None,
                decision,
                criticality: 0,
                doomed: false,
                doomed_at: SimTime::ZERO,
                io_retries: 0,
                retry_token: 0,
                finish: None,
            }
        })
        .collect()
}

fn run_specs_mode(
    specs: &[TxnSpec],
    policy: &dyn Policy,
    disk: bool,
    with_modes: bool,
    faults: bool,
    mode: CacheMode,
) -> RunSummary {
    run_specs_mode_eager(specs, policy, disk, with_modes, faults, mode, false)
}

#[allow(clippy::too_many_arguments)]
fn run_specs_mode_eager(
    specs: &[TxnSpec],
    policy: &dyn Policy,
    disk: bool,
    with_modes: bool,
    faults: bool,
    mode: CacheMode,
    eager_migrations: bool,
) -> RunSummary {
    let mut cfg = if disk {
        SimConfig::disk_base()
    } else {
        SimConfig::mm_base()
    };
    cfg.system.eager_migrations = eager_migrations;
    cfg.workload.db_size = DB;
    cfg.run.num_transactions = specs.len();
    if faults && disk {
        cfg.system.faults = FaultPlan {
            error_prob: 0.2,
            spike_prob: 0.15,
            spike_factor: 2.5,
            retry_budget: 2,
            backoff_base_ms: 2.0,
            backoff_cap_ms: 16.0,
            brownout: Some(Brownout {
                period_ms: 1_500.0,
                duration_ms: 250.0,
                error_prob: 0.5,
                latency_factor: 2.0,
            }),
            cpu: None,
        };
    }
    let txns = build(specs, &cfg, with_modes);
    let n = txns.len();
    let mut source = ReplaySource::new(txns);
    run_simulation_from_mode(&cfg, policy, &mut source, n, mode)
}

fn policy_by_index(which: usize) -> Box<dyn Policy> {
    match which {
        0 => Box::new(Cca::base()) as Box<dyn Policy>,
        1 => Box::new(EdfHp),
        2 => Box::new(EdfWait),
        _ => Box::new(Lsf),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The incremental engine's trajectory and final metrics equal the
    /// always-recompute oracle on arbitrary workloads, and the Verify
    /// mode's internal per-use bit-assertions hold throughout.
    #[test]
    fn incremental_matches_recompute_oracle(
        specs in proptest::collection::vec(txn_spec(), 1..25),
        disk in any::<bool>(),
        with_modes in any::<bool>(),
        faults in any::<bool>(),
        which in 0usize..4,
    ) {
        let p = policy_by_index(which);
        let oracle =
            run_specs_mode(&specs, p.as_ref(), disk, with_modes, faults, CacheMode::AlwaysRecompute);
        let inc =
            run_specs_mode(&specs, p.as_ref(), disk, with_modes, faults, CacheMode::Incremental);
        let verified =
            run_specs_mode(&specs, p.as_ref(), disk, with_modes, faults, CacheMode::Verify);
        prop_assert_eq!(
            inc.sans_sched_stats(),
            oracle.sans_sched_stats(),
            "incremental diverged from the recompute oracle under {}",
            p.name()
        );
        prop_assert_eq!(
            verified.sans_sched_stats(),
            oracle.sans_sched_stats(),
            "verify mode diverged from the recompute oracle under {}",
            p.name()
        );
        // The oracle never consults the caches.
        prop_assert_eq!(oracle.sched.priority_cache_hits, 0);
        prop_assert_eq!(oracle.sched.pair_cache_hits, 0);
    }

    /// Stale-key stress: a tiny database and tight slack make every
    /// transaction conflict, so priorities of P-list neighbours are
    /// repaired and demoted constantly and the current index maximum is
    /// repeatedly aborted or restarted out from under its key. The
    /// heap-indexed pick (lazy: stale-high keys are demoted in place
    /// when validation surfaces them) must still equal the oracle's
    /// full scan — under faults, shared locks, decision narrowing and
    /// mid-run aborts alike.
    #[test]
    fn heap_picks_survive_stale_entry_stress(
        specs in proptest::collection::vec(
            (
                0.05f64..5.0,                                   // arrivals pile up
                proptest::collection::vec(0u16..4, 1..5),        // 4-item db: all conflict
                0.05f64..1.0,                                    // tight slack: aborts + misses
                proptest::collection::vec(any::<bool>(), 8),
                proptest::collection::vec(any::<bool>(), 8),
                proptest::option::of(0usize..3),
            )
                .prop_map(|(gap_ms, mut items, slack, io, reads, branch_at)| {
                    items.dedup();
                    TxnSpec { gap_ms, items, slack, io, reads, branch_at }
                }),
            5..30,
        ),
        disk in any::<bool>(),
        with_modes in any::<bool>(),
        faults in any::<bool>(),
        conflict_policy in 0usize..2,
    ) {
        // Only the ConflictState policies pick through the heap.
        let p: Box<dyn Policy> = if conflict_policy == 0 {
            Box::new(Cca::base())
        } else {
            Box::new(EdfWait)
        };
        let oracle =
            run_specs_mode(&specs, p.as_ref(), disk, with_modes, faults, CacheMode::AlwaysRecompute);
        let inc =
            run_specs_mode(&specs, p.as_ref(), disk, with_modes, faults, CacheMode::Incremental);
        let verified =
            run_specs_mode(&specs, p.as_ref(), disk, with_modes, faults, CacheMode::Verify);
        prop_assert_eq!(
            inc.sans_sched_stats(),
            oracle.sans_sched_stats(),
            "heap pick diverged from the oracle scan under {}",
            p.name()
        );
        prop_assert_eq!(
            verified.sans_sched_stats(),
            oracle.sans_sched_stats(),
            "verify mode diverged under {}",
            p.name()
        );
        // The heap path actually ran incrementally and never in the
        // oracle; Verify's per-pick oracle comparisons all executed.
        prop_assert!(inc.sched.heap_validated_picks > 0);
        prop_assert_eq!(oracle.sched.heap_pushes, 0);
        prop_assert_eq!(oracle.sched.heap_validated_picks, 0);
        prop_assert_eq!(inc.sched.verify_checks, 0);
        prop_assert!(verified.sched.verify_checks > 0);
    }
}

/// Generator-driven workloads (the Poisson arrival path, not a replay
/// source) agree across modes too — including under fault injection and
/// admission control, whose reject/restart paths exercise the
/// set-clearing invalidation hooks.
#[test]
fn modes_agree_on_generated_workloads() {
    let mut configs: Vec<(SimConfig, &str)> = Vec::new();

    let mut mm_hot = SimConfig::mm_base();
    mm_hot.run.num_transactions = 250;
    mm_hot.run.arrival_rate_tps = 10.0;
    configs.push((mm_hot, "mm overload"));

    let mut disk_faulty = SimConfig::disk_base();
    disk_faulty.run.num_transactions = 150;
    disk_faulty.run.arrival_rate_tps = 4.0;
    disk_faulty.system.faults = FaultPlan {
        error_prob: 0.25,
        spike_prob: 0.2,
        spike_factor: 3.0,
        retry_budget: 2,
        backoff_base_ms: 2.0,
        backoff_cap_ms: 16.0,
        brownout: Some(Brownout {
            period_ms: 2_000.0,
            duration_ms: 300.0,
            error_prob: 0.6,
            latency_factor: 2.0,
        }),
        cpu: None,
    };
    configs.push((disk_faulty, "disk faults"));

    let mut disk_admission = SimConfig::disk_base();
    disk_admission.run.num_transactions = 200;
    disk_admission.run.arrival_rate_tps = 8.0;
    disk_admission.system.admission = Some(AdmissionConfig::Static { safety_factor: 3.0 });
    configs.push((disk_admission, "disk admission"));

    for (cfg, label) in &configs {
        for p in [&Cca::base() as &dyn Policy, &EdfHp, &EdfWait, &Lsf] {
            let oracle = run_simulation_with_mode(cfg, p, CacheMode::AlwaysRecompute);
            let inc = run_simulation_with_mode(cfg, p, CacheMode::Incremental);
            let verified = run_simulation_with_mode(cfg, p, CacheMode::Verify);
            assert_eq!(
                inc.sans_sched_stats(),
                oracle.sans_sched_stats(),
                "{label}: incremental diverged under {}",
                p.name()
            );
            assert_eq!(
                verified.sans_sched_stats(),
                oracle.sans_sched_stats(),
                "{label}: verify diverged under {}",
                p.name()
            );
        }
    }
}

/// The caches actually engage: on a contended run the incremental engine
/// resolves most priority lookups from cache and strictly fewer full
/// evaluations than the oracle, while the oracle records zero hits.
#[test]
fn caches_engage_and_reduce_evaluations() {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 300;
    cfg.run.arrival_rate_tps = 10.0;

    for p in [&Cca::base() as &dyn Policy, &EdfHp, &Lsf] {
        let oracle = run_simulation_with_mode(&cfg, p, CacheMode::AlwaysRecompute);
        let inc = run_simulation_with_mode(&cfg, p, CacheMode::Incremental);
        assert_eq!(inc.sans_sched_stats(), oracle.sans_sched_stats());
        assert_eq!(oracle.sched.priority_cache_hits, 0, "{}", p.name());
        assert!(inc.sched.priority_cache_hits > 0, "{}", p.name());
        assert!(
            inc.sched.priority_evals < oracle.sched.priority_evals,
            "{}: {} evals incremental vs {} oracle",
            p.name(),
            inc.sched.priority_evals,
            oracle.sched.priority_evals
        );
        assert_eq!(inc.sched.pick_next_calls, oracle.sched.pick_next_calls);
    }

    // A Static policy collapses to exactly one evaluation per transaction.
    let inc = run_simulation_with_mode(&cfg, &EdfHp, CacheMode::Incremental);
    assert_eq!(
        inc.sched.priority_evals, cfg.run.num_transactions as u64,
        "EDF-HP evaluates each deadline exactly once"
    );
}

/// MPL-256 burst determinism: at the sweep's highest contention point
/// (arrivals far faster than service, so ~256 transactions are active
/// at once) the heap-indexed pick must equal the oracle scan on every
/// decision, rerun bit-identically, and actually exercise its laziness:
/// validated picks, stale pops (keys demoted in place when validation
/// surfaces them), and targeted per-pair invalidations all engage.
#[test]
fn mpl256_burst_heap_determinism() {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 256;
    cfg.run.arrival_rate_tps = 2_000.0;
    for p in [&Cca::base() as &dyn Policy, &EdfWait] {
        let oracle = run_simulation_with_mode(&cfg, p, CacheMode::AlwaysRecompute);
        let inc = run_simulation_with_mode(&cfg, p, CacheMode::Incremental);
        let verified = run_simulation_with_mode(&cfg, p, CacheMode::Verify);
        assert_eq!(
            inc.sans_sched_stats(),
            oracle.sans_sched_stats(),
            "MPL-256: heap picks diverged from the oracle under {}",
            p.name()
        );
        assert_eq!(
            verified.sans_sched_stats(),
            oracle.sans_sched_stats(),
            "MPL-256: verify diverged under {}",
            p.name()
        );
        let again = run_simulation_with_mode(&cfg, p, CacheMode::Incremental);
        assert_eq!(
            inc,
            again,
            "{}: heap pick path must be deterministic",
            p.name()
        );
        assert_eq!(inc.sched.pick_next_calls, oracle.sched.pick_next_calls);
        assert!(inc.sched.heap_validated_picks > 0, "{}", p.name());
        assert!(inc.sched.heap_stale_pops > 0, "{}", p.name());
        assert!(inc.sched.pair_invalidations > 0, "{}", p.name());
        assert_eq!(oracle.sched.heap_pushes, 0, "{}", p.name());
    }

    // LSF picks through the slack-ordered index (time-invariant keys,
    // effective-priority validation) rather than the conflict heap; pin
    // the same burst to the oracle scan and to rerun bit-identity. The
    // conflict-counter assertions above don't apply — slack keys never
    // see pair invalidations — but the index must actually serve picks.
    let oracle = run_simulation_with_mode(&cfg, &Lsf, CacheMode::AlwaysRecompute);
    let inc = run_simulation_with_mode(&cfg, &Lsf, CacheMode::Incremental);
    let verified = run_simulation_with_mode(&cfg, &Lsf, CacheMode::Verify);
    assert_eq!(
        inc.sans_sched_stats(),
        oracle.sans_sched_stats(),
        "MPL-256: slack-index picks diverged from the oracle under LSF"
    );
    assert_eq!(
        verified.sans_sched_stats(),
        oracle.sans_sched_stats(),
        "MPL-256: verify diverged under LSF"
    );
    let again = run_simulation_with_mode(&cfg, &Lsf, CacheMode::Incremental);
    assert_eq!(inc, again, "LSF slack-index path must be deterministic");
    assert!(
        inc.sched.heap_validated_picks > 0,
        "slack index never picked"
    );
    assert_eq!(oracle.sched.heap_validated_picks, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Migration batching is an index-maintenance strategy, not a policy
    /// change: with `eager_migrations` the engine re-walks the runner's
    /// unsafe set at every compute burst (no membership reuse), while the
    /// default batched path skips the walk when the timed half already
    /// mirrors that runner. Both must produce bit-identical trajectories
    /// on arbitrary workloads — including faults, shared locks, and
    /// decision narrowing — and both must match the recompute oracle.
    #[test]
    fn batched_migrations_match_eager_walks(
        specs in proptest::collection::vec(txn_spec(), 1..25),
        disk in any::<bool>(),
        with_modes in any::<bool>(),
        faults in any::<bool>(),
        which in 0usize..4,
    ) {
        let p = policy_by_index(which);
        let eager = run_specs_mode_eager(
            &specs, p.as_ref(), disk, with_modes, faults, CacheMode::Incremental, true);
        let batched = run_specs_mode_eager(
            &specs, p.as_ref(), disk, with_modes, faults, CacheMode::Incremental, false);
        let oracle = run_specs_mode_eager(
            &specs, p.as_ref(), disk, with_modes, faults, CacheMode::AlwaysRecompute, false);
        prop_assert_eq!(
            batched.sans_sched_stats(),
            eager.sans_sched_stats(),
            "batched anchor migrations diverged from eager re-walks under {}",
            p.name()
        );
        prop_assert_eq!(
            batched.sans_sched_stats(),
            oracle.sans_sched_stats(),
            "batched migrations diverged from the recompute oracle under {}",
            p.name()
        );
        // Eager mode never reuses a walk, so it reports no batching.
        prop_assert_eq!(eager.sched.migrations_batched, 0, "{}", p.name());
    }
}

/// A sustained CCA burst freezes and resumes the timed half thousands of
/// times; the frozen entries left behind by picks and repairs must be
/// compacted away while the half is idle, and compaction must not perturb
/// the trajectory. Mirrors the bench profile's `mm_cca_burst_mpl64`
/// scenario, where compaction engages reliably.
#[test]
fn frozen_compaction_engages_on_bursts() {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 64;
    cfg.run.arrival_rate_tps = 2_000.0;

    let oracle = run_simulation_with_mode(&cfg, &Cca::base(), CacheMode::AlwaysRecompute);
    let inc = run_simulation_with_mode(&cfg, &Cca::base(), CacheMode::Incremental);
    assert_eq!(
        inc.sans_sched_stats(),
        oracle.sans_sched_stats(),
        "frozen compaction perturbed the trajectory"
    );
    assert!(
        inc.sched.frozen_compactions > 0,
        "burst workload never compacted the frozen timed half \
         (got {} compactions)",
        inc.sched.frozen_compactions
    );
    assert!(
        inc.sched.migrations_batched > 0,
        "consecutive bursts by the same runner never reused a walk"
    );
    // The oracle maintains no index at all.
    assert_eq!(oracle.sched.frozen_compactions, 0);
    assert_eq!(oracle.sched.migrations_batched, 0);
    assert_eq!(oracle.sched.index_migrations, 0);
}

/// MPL-1024 burst under `CacheMode::Verify`: every cached priority the
/// pick path consults is bit-checked against a fresh evaluation, and the
/// maintained P-list and ready counts are checked against full scans, at
/// the contention level where migration batching and the pair cache work
/// hardest. Slow (minutes) — run explicitly in CI via `--ignored`.
#[test]
#[ignore = "verify-mode smoke at MPL 1024 is slow; CI runs it explicitly"]
fn mpl1024_verify_smoke() {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 1024;
    cfg.run.arrival_rate_tps = 2_000.0;

    let oracle = run_simulation_with_mode(&cfg, &Cca::base(), CacheMode::AlwaysRecompute);
    let verified = run_simulation_with_mode(&cfg, &Cca::base(), CacheMode::Verify);
    assert_eq!(
        verified.sans_sched_stats(),
        oracle.sans_sched_stats(),
        "MPL-1024: verify mode diverged from the recompute oracle"
    );
    assert!(verified.sched.verify_checks > 0);
    assert!(verified.sched.migrations_batched > 0);
}

/// Profiled runs populate the wall-clock counter without perturbing the
/// trajectory; unprofiled runs keep it at zero so summaries stay
/// comparable across machines.
#[test]
fn profiling_is_observationally_neutral() {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 200;
    cfg.run.arrival_rate_tps = 9.0;

    let plain = run_simulation_with_mode(&cfg, &Cca::base(), CacheMode::Incremental);
    let profiled = run_simulation_profiled_with_mode(&cfg, &Cca::base(), CacheMode::Incremental);
    assert_eq!(plain.sched.sched_wall_ns, 0);
    assert!(profiled.sched.sched_wall_ns > 0);
    let mut masked = profiled.clone();
    masked.sched.sched_wall_ns = 0;
    assert_eq!(plain, masked, "profiling must not change any other field");
}
