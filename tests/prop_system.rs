//! System-level property tests: arbitrary hand-built workloads driven
//! through the engine under each policy must satisfy the paper's global
//! invariants — everything commits, traces reconcile with metrics, CCA
//! never waits for a lock, and runs are deterministic.

use proptest::prelude::*;
use rtx::policies::{Cca, EdfHp, EdfWait, Lsf};
use rtx::preanalysis::{DataSet, ItemId, TypeId};
use rtx::rtdb::engine::run_simulation_from;
use rtx::rtdb::locks::LockMode;
use rtx::rtdb::{
    DecisionSpec, Policy, ReplaySource, SimConfig, Stage, Transaction, TxnId, TxnState,
};
use rtx::sim::{SimDuration, SimTime};

/// Specification of one random transaction.
#[derive(Debug, Clone)]
struct TxnSpec {
    gap_ms: f64,
    items: Vec<u16>,
    slack: f64,
    io: Vec<bool>,
    reads: Vec<bool>,
    branch_at: Option<usize>,
}

const DB: u64 = 12;

fn txn_spec() -> impl Strategy<Value = TxnSpec> {
    (
        0.1f64..50.0,
        proptest::collection::vec(0u16..DB as u16, 1..8),
        0.1f64..4.0,
        proptest::collection::vec(any::<bool>(), 8),
        proptest::collection::vec(any::<bool>(), 8),
        proptest::option::of(0usize..4),
    )
        .prop_map(|(gap_ms, mut items, slack, io, reads, branch_at)| {
            items.dedup();
            TxnSpec {
                gap_ms,
                items,
                slack,
                io,
                reads,
                branch_at,
            }
        })
}

/// Materialize specs into engine transactions.
fn build(specs: &[TxnSpec], cfg: &SimConfig, with_modes: bool) -> Vec<Transaction> {
    let mut clock = SimTime::ZERO;
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            clock += SimDuration::from_ms(spec.gap_ms);
            let items: Vec<ItemId> = spec.items.iter().map(|&x| ItemId(x as u32)).collect();
            let update_time = SimDuration::from_ms(2.0);
            let io_pattern: Vec<bool> = if cfg.system.disk.is_some() {
                items.iter().zip(&spec.io).map(|(_, &b)| b).collect()
            } else {
                Vec::new()
            };
            let io_time =
                SimDuration::from_ms(25.0) * io_pattern.iter().filter(|&&b| b).count() as u64;
            let resource_time = update_time * items.len() as u64 + io_time;
            let might: DataSet = items.iter().copied().collect();
            let modes: Vec<LockMode> = if with_modes {
                items
                    .iter()
                    .zip(&spec.reads)
                    .map(|(_, &r)| {
                        if r {
                            LockMode::Shared
                        } else {
                            LockMode::Exclusive
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let decision = spec.branch_at.and_then(|at| {
                (at + 1 < items.len()).then(|| DecisionSpec {
                    after_update: at + 1,
                    full: might.clone(),
                    narrowed: might.clone(), // trivial narrowing is legal
                })
            });
            Transaction {
                id: TxnId(i as u32),
                ty: TypeId(0),
                arrival: clock,
                deadline: clock + resource_time.scale(1.0 + spec.slack),
                resource_time,
                items,
                io_pattern,
                modes,
                update_time,
                might_access: might,
                state: TxnState::Ready,
                progress: 0,
                stage: Stage::Lock,
                cpu_left: SimDuration::ZERO,
                burst_start: SimTime::ZERO,
                accessed: DataSet::new(),
                written: DataSet::new(),
                service: SimDuration::ZERO,
                restarts: 0,
                waiting_for: None,
                decision,
                criticality: 0,
                doomed: false,
                doomed_at: SimTime::ZERO,
                io_retries: 0,
                retry_token: 0,
                finish: None,
            }
        })
        .collect()
}

fn run_specs(
    specs: &[TxnSpec],
    policy: &dyn Policy,
    disk: bool,
    with_modes: bool,
) -> rtx::rtdb::RunSummary {
    let mut cfg = if disk {
        SimConfig::disk_base()
    } else {
        SimConfig::mm_base()
    };
    cfg.workload.db_size = DB;
    cfg.run.num_transactions = specs.len();
    let txns = build(specs, &cfg, with_modes);
    let n = txns.len();
    let mut source = ReplaySource::new(txns);
    run_simulation_from(&cfg, policy, &mut source, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every workload commits completely under every policy, on both
    /// resource models, and the summary is internally consistent.
    #[test]
    fn everything_commits_under_all_policies(
        specs in proptest::collection::vec(txn_spec(), 1..25),
        disk in any::<bool>(),
        with_modes in any::<bool>(),
        which in 0usize..4,
    ) {
        let policies: Vec<Box<dyn Policy>> = vec![
            match which {
                0 => Box::new(Cca::base()) as Box<dyn Policy>,
                1 => Box::new(EdfHp),
                2 => Box::new(EdfWait),
                _ => Box::new(Lsf),
            },
        ];
        for p in &policies {
            let s = run_specs(&specs, p.as_ref(), disk, with_modes);
            prop_assert_eq!(s.committed, specs.len() as u64, "{}", p.name());
            prop_assert!((0.0..=100.0).contains(&s.miss_percent));
            prop_assert!(s.cpu_utilization <= 1.0 + 1e-9);
            prop_assert!(s.disk_utilization <= 1.0 + 1e-9);
            prop_assert!(s.mean_lateness_ms >= 0.0);
            prop_assert!(s.p99_lateness_ms + 1e-9 >= 0.0);
            prop_assert!(s.max_lateness_ms + 1e-9 >= s.p99_lateness_ms * 0.98,
                "max {} vs p99 {}", s.max_lateness_ms, s.p99_lateness_ms);
            if !disk {
                prop_assert_eq!(s.disk_utilization, 0.0);
            }
        }
    }

    /// Theorem 1 on arbitrary workloads: CCA never lock-waits, never
    /// needs the deadlock resolver, never triggers starvation shields.
    #[test]
    fn cca_theorems_on_arbitrary_workloads(
        specs in proptest::collection::vec(txn_spec(), 1..25),
        disk in any::<bool>(),
    ) {
        let s = run_specs(&specs, &Cca::base(), disk, false);
        prop_assert_eq!(s.lock_waits, 0);
        prop_assert_eq!(s.deadlock_resolutions, 0);
        prop_assert_eq!(s.starvation_shields, 0);
    }

    /// Determinism: identical inputs give identical summaries.
    #[test]
    fn runs_deterministic(
        specs in proptest::collection::vec(txn_spec(), 1..15),
        disk in any::<bool>(),
    ) {
        let a = run_specs(&specs, &Cca::base(), disk, false);
        let b = run_specs(&specs, &Cca::base(), disk, false);
        prop_assert_eq!(a, b);
    }

    /// Workloads with entirely disjoint item sets never abort or wait
    /// under any policy: all contention metrics are zero.
    #[test]
    fn disjoint_workloads_are_conflict_free(
        gaps in proptest::collection::vec(0.1f64..30.0, 2..12),
        disk in any::<bool>(),
    ) {
        // One item per transaction, all distinct (DB is large enough).
        let specs: Vec<TxnSpec> = gaps
            .iter()
            .enumerate()
            .map(|(i, &gap_ms)| TxnSpec {
                gap_ms,
                items: vec![i as u16],
                slack: 2.0,
                io: vec![false; 8],
                reads: vec![false; 8],
                branch_at: None,
            })
            .collect();
        for p in [&Cca::base() as &dyn Policy, &EdfHp, &Lsf] {
            let mut cfg = if disk { SimConfig::disk_base() } else { SimConfig::mm_base() };
            cfg.workload.db_size = 16;
            cfg.run.num_transactions = specs.len();
            let txns = build(&specs, &cfg, false);
            let n = txns.len();
            let mut source = ReplaySource::new(txns);
            let s = run_simulation_from(&cfg, p, &mut source, n);
            prop_assert_eq!(s.restarts_total, 0, "{}", p.name());
            prop_assert_eq!(s.lock_waits, 0);
        }
    }
}
