//! The decision trace must be consistent with the run summary: counts of
//! commits/aborts/waits derived from the event log equal the metrics the
//! engine reports, and per-transaction event sequences are well-formed.

use rtx::policies::{Cca, EdfHp};
use rtx::rtdb::{run_simulation, run_simulation_traced, SimConfig, TraceEvent, TxnId};

fn mm(seed: u64, rate: f64, n: usize) -> SimConfig {
    let mut cfg = SimConfig::mm_base();
    cfg.run.seed = seed;
    cfg.run.arrival_rate_tps = rate;
    cfg.run.num_transactions = n;
    cfg
}

fn disk(seed: u64, rate: f64, n: usize) -> SimConfig {
    let mut cfg = SimConfig::disk_base();
    cfg.run.seed = seed;
    cfg.run.arrival_rate_tps = rate;
    cfg.run.num_transactions = n;
    cfg
}

#[test]
fn trace_counts_match_summary_mm() {
    let cfg = mm(1, 9.0, 200);
    let (summary, trace) = run_simulation_traced(&cfg, &EdfHp);
    assert_eq!(trace.commits() as u64, summary.committed);
    assert_eq!(trace.aborts() as u64, summary.restarts_total);
    assert_eq!(
        trace.count(|e| matches!(e, TraceEvent::LockWait { .. })) as u64,
        summary.lock_waits
    );
    assert_eq!(
        trace.count(|e| matches!(e, TraceEvent::Arrival { .. })),
        200
    );
}

#[test]
fn trace_counts_match_summary_disk() {
    let cfg = disk(2, 5.0, 120);
    let (summary, trace) = run_simulation_traced(&cfg, &Cca::base());
    assert_eq!(trace.commits() as u64, summary.committed);
    assert_eq!(trace.aborts() as u64, summary.restarts_total);
    assert_eq!(
        trace.count(|e| matches!(e, TraceEvent::LockWait { .. })),
        0,
        "Theorem 1 visible in the trace"
    );
    // Every issued IO eventually completes.
    let issued = trace.count(|e| matches!(e, TraceEvent::IoIssued { .. }));
    let done = trace.count(|e| matches!(e, TraceEvent::IoDone { .. }));
    assert_eq!(issued, done);
    assert!(issued > 0, "disk workload actually used the disk");
}

#[test]
fn tracing_does_not_change_the_run() {
    let cfg = disk(3, 5.0, 100);
    let plain = run_simulation(&cfg, &Cca::base());
    let (traced, _) = run_simulation_traced(&cfg, &Cca::base());
    assert_eq!(plain, traced, "tracing must be observation-only");
}

#[test]
fn per_transaction_sequences_well_formed() {
    let cfg = mm(4, 8.0, 100);
    let (_, trace) = run_simulation_traced(&cfg, &EdfHp);
    for id in 0..100u32 {
        let events: Vec<_> = trace.for_txn(TxnId(id)).collect();
        // First event is the arrival, last is the commit (abort events of
        // other txns it caused can be interleaved).
        assert!(
            matches!(
                events.first().map(|r| &r.event),
                Some(TraceEvent::Arrival { .. })
            ),
            "T{id} must start with its arrival"
        );
        let commits = events
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::Commit { txn, .. } if txn == TxnId(id)))
            .count();
        assert_eq!(commits, 1, "T{id} commits exactly once");
        // Timestamps are non-decreasing.
        for pair in events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        // Dispatches ≥ 1 (it ran at least once to commit).
        let dispatches = events
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::Dispatch { txn, .. } if txn == TxnId(id)))
            .count();
        assert!(dispatches >= 1);
    }
}

#[test]
fn secondary_dispatches_only_on_disk() {
    let (_, mm_trace) = run_simulation_traced(&mm(5, 9.0, 100), &Cca::base());
    assert_eq!(
        mm_trace.count(|e| matches!(
            e,
            TraceEvent::Dispatch {
                secondary: true,
                ..
            }
        )),
        0,
        "no IO waits on main memory, so no secondaries"
    );
    // EDF-HP fills every IO wait greedily, so its disk runs must show
    // secondary dispatches. (CCA's restricted filter may legitimately find
    // no compatible transaction on the db=30 hell-workload.)
    let (_, disk_trace) = run_simulation_traced(&disk(5, 5.0, 100), &EdfHp);
    assert!(
        disk_trace.count(|e| matches!(
            e,
            TraceEvent::Dispatch {
                secondary: true,
                ..
            }
        )) > 0,
        "disk runs must exercise IO-wait scheduling"
    );
}
