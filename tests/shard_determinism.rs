//! Shard-count invariance of the range-sharded engine.
//!
//! The engine shards its lock table and conflict-epoch evaluation by
//! contiguous item ranges (`system.shards`). Sharding is a *parallelism*
//! strategy, never a semantics change: the per-shard workers compute the
//! same pair predicate the serial walk computes and their verdicts are
//! merged back in the serial walk's order, so a run's trajectory and
//! metrics must be bit-identical for every shard count — and identical
//! to the `AlwaysRecompute` oracle, which has no acceleration state at
//! all. These tests pin that invariance over random workloads (shared
//! locks, decision narrowing, disk + CPU faults included) and over the
//! high-MPL burst where the parallel epochs actually engage.

use proptest::prelude::*;
use rtx::policies::{Cca, EdfHp, EdfWait, Lsf};
use rtx::preanalysis::{DataSet, ItemId, TypeId};
use rtx::rtdb::engine::{run_simulation_from_mode, run_simulation_with_mode};
use rtx::rtdb::locks::LockMode;
use rtx::rtdb::{
    CacheMode, DecisionSpec, Policy, ReplaySource, RunSummary, SimConfig, Stage, Transaction,
    TxnId, TxnState,
};
use rtx::sim::fault::{Brownout, CpuFaultPlan};
use rtx::sim::{SimDuration, SimTime};

/// Specification of one random transaction (mirrors
/// `incremental_equivalence.rs`).
#[derive(Debug, Clone)]
struct TxnSpec {
    gap_ms: f64,
    items: Vec<u16>,
    slack: f64,
    io: Vec<bool>,
    reads: Vec<bool>,
    branch_at: Option<usize>,
}

const DB: u64 = 12;

fn txn_spec() -> impl Strategy<Value = TxnSpec> {
    (
        0.1f64..50.0,
        proptest::collection::vec(0u16..DB as u16, 1..8),
        0.1f64..4.0,
        proptest::collection::vec(any::<bool>(), 8),
        proptest::collection::vec(any::<bool>(), 8),
        proptest::option::of(0usize..4),
    )
        .prop_map(|(gap_ms, mut items, slack, io, reads, branch_at)| {
            items.dedup();
            TxnSpec {
                gap_ms,
                items,
                slack,
                io,
                reads,
                branch_at,
            }
        })
}

/// Materialize specs into engine transactions.
fn build(specs: &[TxnSpec], cfg: &SimConfig, with_modes: bool) -> Vec<Transaction> {
    let mut clock = SimTime::ZERO;
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            clock += SimDuration::from_ms(spec.gap_ms);
            let items: Vec<ItemId> = spec.items.iter().map(|&x| ItemId(x as u32)).collect();
            let update_time = SimDuration::from_ms(2.0);
            let io_pattern: Vec<bool> = if cfg.system.disk.is_some() {
                items.iter().zip(&spec.io).map(|(_, &b)| b).collect()
            } else {
                Vec::new()
            };
            let io_time =
                SimDuration::from_ms(25.0) * io_pattern.iter().filter(|&&b| b).count() as u64;
            let resource_time = update_time * items.len() as u64 + io_time;
            let might: DataSet = items.iter().copied().collect();
            let modes: Vec<LockMode> = if with_modes {
                items
                    .iter()
                    .zip(&spec.reads)
                    .map(|(_, &r)| {
                        if r {
                            LockMode::Shared
                        } else {
                            LockMode::Exclusive
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let decision = spec.branch_at.and_then(|at| {
                (at + 1 < items.len()).then(|| DecisionSpec {
                    after_update: at + 1,
                    full: might.clone(),
                    narrowed: might.clone(),
                })
            });
            Transaction {
                id: TxnId(i as u32),
                ty: TypeId(0),
                arrival: clock,
                deadline: clock + resource_time.scale(1.0 + spec.slack),
                resource_time,
                items,
                io_pattern,
                modes,
                update_time,
                might_access: might,
                state: TxnState::Ready,
                progress: 0,
                stage: Stage::Lock,
                cpu_left: SimDuration::ZERO,
                burst_start: SimTime::ZERO,
                accessed: DataSet::new(),
                written: DataSet::new(),
                service: SimDuration::ZERO,
                restarts: 0,
                waiting_for: None,
                decision,
                criticality: 0,
                doomed: false,
                doomed_at: SimTime::ZERO,
                io_retries: 0,
                retry_token: 0,
                finish: None,
            }
        })
        .collect()
}

/// Run `specs` at the given shard count; faults inject both disk and CPU
/// failure modes so the abort/restart clearing paths run under sharding.
fn run_specs_sharded(
    specs: &[TxnSpec],
    policy: &dyn Policy,
    disk: bool,
    with_modes: bool,
    faults: bool,
    shards: usize,
    mode: CacheMode,
) -> RunSummary {
    let mut cfg = if disk {
        SimConfig::disk_base()
    } else {
        SimConfig::mm_base()
    };
    cfg.workload.db_size = DB;
    cfg.run.num_transactions = specs.len();
    cfg.system.shards = shards;
    if faults {
        cfg.system.faults.cpu = Some(CpuFaultPlan {
            stall_prob: 0.1,
            slow_prob: 0.1,
            slow_factor: 2.0,
            retry_budget: 2,
            backoff_base_ms: 2.0,
            backoff_cap_ms: 16.0,
            brownout: None,
        });
        if disk {
            cfg.system.faults.error_prob = 0.2;
            cfg.system.faults.spike_prob = 0.15;
            cfg.system.faults.spike_factor = 2.5;
            cfg.system.faults.retry_budget = 2;
            cfg.system.faults.backoff_base_ms = 2.0;
            cfg.system.faults.backoff_cap_ms = 16.0;
            cfg.system.faults.brownout = Some(Brownout {
                period_ms: 1_500.0,
                duration_ms: 250.0,
                error_prob: 0.5,
                latency_factor: 2.0,
            });
        }
    }
    let txns = build(specs, &cfg, with_modes);
    let n = txns.len();
    let mut source = ReplaySource::new(txns);
    run_simulation_from_mode(&cfg, policy, &mut source, n, mode)
}

fn policy_by_index(which: usize) -> Box<dyn Policy> {
    match which {
        0 => Box::new(Cca::base()) as Box<dyn Policy>,
        1 => Box::new(EdfHp),
        2 => Box::new(EdfWait),
        _ => Box::new(Lsf),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every shard count produces the serial engine's trajectory and
    /// metrics on arbitrary workloads — including disk + CPU faults,
    /// shared locks and decision narrowing — and the serial run equals
    /// the recompute oracle.
    #[test]
    fn shard_counts_are_outcome_invariant(
        specs in proptest::collection::vec(txn_spec(), 1..25),
        disk in any::<bool>(),
        with_modes in any::<bool>(),
        faults in any::<bool>(),
        which in 0usize..4,
    ) {
        let p = policy_by_index(which);
        let serial = run_specs_sharded(
            &specs, p.as_ref(), disk, with_modes, faults, 1, CacheMode::Incremental);
        let oracle = run_specs_sharded(
            &specs, p.as_ref(), disk, with_modes, faults, 1, CacheMode::AlwaysRecompute);
        prop_assert_eq!(
            serial.sans_sched_stats(),
            oracle.sans_sched_stats(),
            "serial run diverged from the recompute oracle under {}",
            p.name()
        );
        for shards in [2usize, 4, 8] {
            let sharded = run_specs_sharded(
                &specs, p.as_ref(), disk, with_modes, faults, shards, CacheMode::Incremental);
            prop_assert_eq!(
                sharded.sans_sched_stats(),
                serial.sans_sched_stats(),
                "{} shards diverged from the serial engine under {}",
                shards,
                p.name()
            );
            // Reruns at the same shard count are bit-identical,
            // instrumentation counters included.
            let again = run_specs_sharded(
                &specs, p.as_ref(), disk, with_modes, faults, shards, CacheMode::Incremental);
            prop_assert_eq!(&sharded, &again, "{} shards: nondeterministic rerun", shards);
        }
    }
}

/// MPL-256 CCA burst across shard counts: enough concurrent transactions
/// that the conflict epochs exceed the parallel fan-out threshold, so
/// the per-shard workers and the deterministic merge actually run (the
/// `shard_barriers` counter proves it) — and the trajectory still equals
/// the serial engine's, bit for bit.
#[test]
fn mpl256_burst_parallel_epochs_match_serial() {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 256;
    cfg.run.arrival_rate_tps = 2_000.0;

    for p in [&Cca::base() as &dyn Policy, &EdfWait] {
        cfg.system.shards = 1;
        let serial = run_simulation_with_mode(&cfg, p, CacheMode::Incremental);
        assert_eq!(
            serial.sched.shard_barriers,
            0,
            "{}: serial run must never hit a shard barrier",
            p.name()
        );
        for shards in [2usize, 4, 8] {
            cfg.system.shards = shards;
            let sharded = run_simulation_with_mode(&cfg, p, CacheMode::Incremental);
            assert_eq!(
                sharded.sans_sched_stats(),
                serial.sans_sched_stats(),
                "{}: {} shards diverged from serial on the MPL-256 burst",
                p.name(),
                shards
            );
            assert!(
                sharded.sched.shard_barriers > 0,
                "{}: {} shards never fanned out a conflict epoch",
                p.name(),
                shards
            );
            let again = run_simulation_with_mode(&cfg, p, CacheMode::Incremental);
            assert_eq!(sharded, again, "{}: sharded rerun diverged", p.name());
        }
    }
}

/// Verify mode under sharding: the in-engine oracle assertions (cached
/// priorities bit-checked, repair walks compared against full active
/// scans) must hold while the parallel epochs run, and the verified
/// trajectory must equal the recompute oracle's.
#[test]
fn verify_mode_holds_under_sharding() {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 256;
    cfg.run.arrival_rate_tps = 2_000.0;
    cfg.system.shards = 4;

    let verified = run_simulation_with_mode(&cfg, &Cca::base(), CacheMode::Verify);
    assert!(verified.sched.verify_checks > 0);
    assert!(
        verified.sched.shard_barriers > 0,
        "verify run never exercised the parallel epochs"
    );
    cfg.system.shards = 1;
    let oracle = run_simulation_with_mode(&cfg, &Cca::base(), CacheMode::AlwaysRecompute);
    assert_eq!(
        verified.sans_sched_stats(),
        oracle.sans_sched_stats(),
        "sharded verify run diverged from the recompute oracle"
    );
}

/// The `cross_shard_conflicts` counter classifies barrier-surfaced
/// conflicters by footprint span: with the paper's uniform 30-item
/// footprints, most conflicters straddle a shard boundary, so the
/// counter must move whenever barriers fire.
#[test]
fn cross_shard_conflicts_are_counted() {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 256;
    cfg.run.arrival_rate_tps = 2_000.0;
    cfg.system.shards = 4;

    let sharded = run_simulation_with_mode(&cfg, &Cca::base(), CacheMode::Incremental);
    assert!(sharded.sched.shard_barriers > 0);
    assert!(
        sharded.sched.cross_shard_conflicts > 0,
        "barriers fired but no conflicter was classified cross-shard"
    );
}
