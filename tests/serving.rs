//! Serving front-end guarantees: the submission queue and admission
//! path behave under concurrency, shutdown drains everything in flight,
//! and virtual-clock serving is *bit-identical* to the batch runner.

use std::sync::Arc;

use rtx::policies::{Cca, EdfHp, Lsf};
use rtx::preanalysis::{ItemId, TypeId};
use rtx::rtdb::{
    run_simulation_from, AdmissionConfig, Policy, ReplaySource, SimConfig, Transaction, TxnId,
};
use rtx::serve::{ServeConfig, Server, TraceSpec, TxnRequest};
use rtx::sim::{SimDuration, SimTime};

/// The configuration the serving experiments run on (mirrors
/// `crates/bench/src/experiments/serve.rs`): main-memory resource model
/// over the trace generator's 10 000-record table, lenient admission.
fn serve_cfg() -> SimConfig {
    let mut cfg = SimConfig::mm_base();
    cfg.workload.db_size = 10_000;
    cfg.system.abort_cost_ms = 2.0;
    cfg.system.admission = Some(AdmissionConfig::lenient());
    cfg
}

/// A compressed trading-day trace: `txns` arrivals at `rate_tps` on
/// average.
fn trace(txns: usize, rate_tps: f64, seed: u64) -> TraceSpec {
    let mut spec = TraceSpec::trading_day(txns, seed);
    spec.day_secs = txns as f64 / rate_tps;
    spec
}

/// Serving a recorded trace under the virtual clock must reproduce the
/// batch runner's aggregates **bit for bit**: same commits, same misses,
/// same restarts, same time-weighted queue lengths — the serving loop is
/// the same engine driven through [`rtx::rtdb::StepEngine`], and its
/// event order is pinned to the batch calendar's.
#[test]
fn virtual_serving_reproduces_batch_aggregates_bit_for_bit() {
    let policies: [(&str, Arc<dyn Policy + Send + Sync>); 3] = [
        ("EDF-HP", Arc::new(EdfHp)),
        ("CCA", Arc::new(Cca::base())),
        ("LSF", Arc::new(Lsf)),
    ];
    let cfg = serve_cfg();
    for (name, policy) in policies {
        let spec = trace(2_000, 60.0, 7);
        let requests: Vec<TxnRequest> = spec.stream().collect();

        // Batch path: materialize the trace and drive it through the
        // one-shot runner.
        let txns: Vec<Transaction> = requests
            .iter()
            .enumerate()
            .map(|(i, r)| r.clone().into_transaction(TxnId(i as u32), r.arrival))
            .collect();
        let n = txns.len();
        let batch = run_simulation_from(&cfg, &*policy, &mut ReplaySource::new(txns), n);

        // Serving path: same requests through the front door.
        let server = Server::start(
            ServeConfig::virtual_mode(),
            Arc::new(cfg.clone()),
            Arc::clone(&policy),
        )
        .expect("config is valid");
        for req in requests {
            server.submit(req).expect("server open");
        }
        let report = server.shutdown();

        assert_eq!(
            report.summary, batch,
            "virtual serving diverged from the batch runner under {name}"
        );
    }
}

/// Concurrent submitters racing on the same hot records each get exactly
/// one terminal outcome, the outcomes tally with the engine's own
/// accept/reject counts, and overload actually produces both classes.
#[test]
fn concurrent_submitters_see_consistent_outcomes() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 40;

    let server = Server::start(
        ServeConfig::virtual_mode(),
        Arc::new(serve_cfg()),
        Arc::new(EdfHp),
    )
    .expect("config is valid");

    // A long "plug" transaction holds the hot range [0, 20) for its whole
    // 100 ms run (20 updates x 5 ms, generous slack).
    let plug = server
        .submit(TxnRequest {
            ty: TypeId(0),
            items: (0..20).map(ItemId).collect(),
            update_time: SimDuration::from_ms(5.0),
            slack: 10.0,
            arrival: SimTime::ZERO,
            io_pattern: vec![],
        })
        .expect("server open");

    // Flood requests conflict with the plug and carry only 20% slack
    // (5 ms of work, a 6 ms window): one conflicting partially-executed
    // transaction already makes the admission estimate 5 + 2 = 7 ms >
    // 6 ms, so anything arriving during the plug's run is rejected at
    // the door, while arrivals after it commits are admitted again.
    let flood = |k: usize| TxnRequest {
        ty: TypeId(1),
        items: (0..5).map(ItemId).collect(),
        update_time: SimDuration::from_ms(1.0),
        slack: 0.2,
        arrival: SimTime::ZERO + SimDuration::from_ms(10.0 + 5.0 * k as f64),
        io_pattern: vec![],
    };

    let tickets: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(|| {
                    (0..PER_THREAD)
                        .map(|k| server.submit(flood(k)).expect("server open"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    let report = server.shutdown();

    assert!(plug.wait().accepted(), "uncontended plug must be admitted");
    let mut accepted = 1u64; // the plug
    let mut rejected = 0u64;
    for ticket in &tickets {
        // Every ticket has resolved by shutdown, and resolves to exactly
        // one stable outcome.
        let outcome = ticket.try_get().expect("ticket resolved at shutdown");
        assert_eq!(ticket.wait(), outcome, "outcome must be stable");
        if outcome.accepted() {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    assert_eq!(accepted + rejected, (THREADS * PER_THREAD + 1) as u64);
    assert_eq!(accepted, report.summary.committed, "ticket/engine tally");
    assert_eq!(rejected, report.summary.rejected, "ticket/engine tally");
    assert!(accepted > 1, "post-plug arrivals must be admitted");
    assert!(
        rejected > 0,
        "arrivals conflicting with the running plug must be rejected"
    );
}

/// Shutdown is graceful: every transaction still queued or in flight is
/// driven to a terminal outcome before the report is produced — nothing
/// is dropped, and the final metrics show an empty system.
#[test]
fn graceful_shutdown_drains_in_flight_transactions() {
    let server = Server::start(
        ServeConfig::virtual_mode(),
        Arc::new(serve_cfg()),
        Arc::new(EdfHp),
    )
    .expect("config is valid");

    // Submit a whole trace without ever waiting on a ticket, then shut
    // down immediately: the trailing arrivals are still queued (their
    // arrival stamps are in the engine's future) when close is signalled.
    let n = 500;
    let tickets: Vec<_> = trace(n, 80.0, 3)
        .stream()
        .map(|req| server.submit(req).expect("server open"))
        .collect();
    let report = server.shutdown();

    for ticket in &tickets {
        assert!(
            ticket.try_get().is_some(),
            "every in-flight transaction must reach a terminal outcome"
        );
    }
    assert_eq!(
        report.summary.committed + report.summary.rejected,
        n as u64,
        "shutdown must account for every submission"
    );
    assert_eq!(report.metrics.in_flight, 0, "nothing may remain in flight");
    assert_eq!(report.metrics.submitted, n as u64);
}

/// An engine panic mid-run must not strand a single submitter: the
/// supervisor resolves every outstanding ticket (poisoning the ones the
/// crashed engine held), records the crash, and — within the restart
/// budget — a fresh engine picks the queue back up and finishes the
/// trace.
#[test]
fn engine_panic_resolves_every_ticket_and_restarts() {
    let mut serve = ServeConfig::virtual_mode();
    serve.panic_at_arrival = Some(50);
    serve.max_restarts = 2;
    let server =
        Server::start(serve, Arc::new(serve_cfg()), Arc::new(EdfHp)).expect("config is valid");

    let n = 500;
    let tickets: Vec<_> = trace(n, 80.0, 3)
        .stream()
        .map(|req| {
            server
                .submit(req)
                .expect("queue never closes: restart budget covers the one injected panic")
        })
        .collect();
    let report = server.shutdown();

    assert_eq!(report.crashes, 1, "exactly the injected panic");
    let mut poisoned = 0u64;
    let mut finished = 0u64;
    for ticket in &tickets {
        // A bounded wait, so a supervisor bug shows up as a test failure
        // rather than a hang.
        let outcome = ticket
            .wait_timeout(std::time::Duration::from_secs(30))
            .expect("every ticket must resolve after a crash");
        if outcome.poisoned() {
            poisoned += 1;
        } else {
            finished += 1;
        }
    }
    assert!(poisoned > 0, "the crash held transactions in flight");
    assert!(finished > 0, "the restarted engine must drain the queue");
    assert_eq!(poisoned, report.metrics.poisoned, "ticket/metrics tally");
    assert_eq!(
        report.metrics.committed + report.metrics.rejected + report.metrics.poisoned,
        n as u64,
        "every submission reaches exactly one terminal outcome"
    );
}

/// Past the restart budget the server fails closed: all outstanding and
/// queued tickets poison, and further submissions are refused rather
/// than silently dropped.
#[test]
fn crash_past_restart_budget_closes_the_server() {
    let mut serve = ServeConfig::virtual_mode();
    serve.panic_at_arrival = Some(10);
    serve.max_restarts = 0;
    let server =
        Server::start(serve, Arc::new(serve_cfg()), Arc::new(EdfHp)).expect("config is valid");

    let n = 300;
    let mut tickets = Vec::new();
    let mut refused = 0u64;
    for req in trace(n, 80.0, 3).stream() {
        match server.submit(req) {
            Ok(t) => tickets.push(t),
            Err(rtx::serve::SubmitError::Closed(_)) => refused += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    let report = server.shutdown();

    assert_eq!(report.crashes, 1);
    let mut resolved = 0u64;
    for ticket in &tickets {
        assert!(
            ticket
                .wait_timeout(std::time::Duration::from_secs(30))
                .is_some(),
            "no ticket may hang on a dead server"
        );
        resolved += 1;
    }
    assert_eq!(resolved + refused, n as u64);
    assert!(
        report.metrics.poisoned > 0,
        "in-flight work at the terminal crash must be poisoned"
    );
}

/// `Ticket::wait_timeout` times out (returning `None`) while the
/// transaction is genuinely still pending, and the same ticket still
/// resolves later.
#[test]
fn ticket_wait_timeout_expires_then_resolves() {
    let server = Server::start(
        ServeConfig::virtual_mode(),
        Arc::new(serve_cfg()),
        Arc::new(EdfHp),
    )
    .expect("config is valid");

    // Virtual replay holds an arrival until its successor shows up or
    // the stream closes, so a lone submission stays pending.
    let ticket = server
        .submit(TxnRequest {
            ty: TypeId(0),
            items: vec![ItemId(1), ItemId(2)],
            update_time: SimDuration::from_ms(1.0),
            slack: 2.0,
            arrival: SimTime::ZERO,
            io_pattern: vec![],
        })
        .expect("server open");
    assert_eq!(
        ticket.wait_timeout(std::time::Duration::from_millis(50)),
        None,
        "pending ticket must time out, not resolve"
    );
    let report = server.shutdown();
    assert!(ticket
        .wait_timeout(std::time::Duration::from_secs(30))
        .expect("shutdown resolves the ticket")
        .accepted());
    assert_eq!(report.summary.committed, 1);
}

/// Malformed serving configurations are rejected at `Server::start`
/// instead of panicking inside the engine thread.
#[test]
fn bad_serve_configs_are_rejected_at_start() {
    let cases: Vec<(&str, ServeConfig)> = vec![
        ("zero queue", {
            let mut c = ServeConfig::virtual_mode();
            c.queue_capacity = 0;
            c
        }),
        ("zero engine cap", {
            let mut c = ServeConfig::wall(100.0);
            c.max_in_engine = 0;
            c
        }),
        ("zero window", {
            let mut c = ServeConfig::virtual_mode();
            c.window_secs = 0.0;
            c
        }),
        ("NaN window", {
            let mut c = ServeConfig::virtual_mode();
            c.window_secs = f64::NAN;
            c
        }),
        ("zero wall scale", ServeConfig::wall(0.0)),
        ("infinite wall scale", ServeConfig::wall(f64::INFINITY)),
    ];
    for (what, serve) in cases {
        assert!(
            Server::start(serve, Arc::new(serve_cfg()), Arc::new(EdfHp)).is_err(),
            "{what} must be rejected"
        );
    }
}
