//! Hardened replication runner: a poisoned seed, a tripped watchdog or
//! an invalid configuration surfaces as that seed's typed [`RunError`]
//! while every other seed completes and the survivor aggregate stays
//! bit-identical across thread counts.

use rtx_core::{Cca, EdfHp};
use rtx_rtdb::engine::run_simulation_checked;
use rtx_rtdb::runner::{
    run_replications_checked, run_seeds_checked, AggregateSummary, BatchSummary, Parallelism,
    ReplicationOptions,
};
use rtx_rtdb::{ConfigError, RunError, SimConfig, WatchdogConfig};
use rtx_sim::fault::FaultPlan;

fn assert_bitwise_identical(a: &AggregateSummary, b: &AggregateSummary) {
    assert_eq!(a.replications, b.replications);
    for (la, lb) in [
        (a.miss_percent, b.miss_percent),
        (a.mean_lateness_ms, b.mean_lateness_ms),
        (a.restarts_per_txn, b.restarts_per_txn),
        (a.mean_response_ms, b.mean_response_ms),
    ] {
        assert_eq!(la.mean.to_bits(), lb.mean.to_bits());
        assert_eq!(la.half_width.to_bits(), lb.half_width.to_bits());
    }
}

fn poisoned_batch(parallelism: Parallelism) -> BatchSummary {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 100;
    cfg.run.arrival_rate_tps = 6.0;
    cfg.run.poison_seed = Some(cfg.run.seed.wrapping_add(2));
    let opts = ReplicationOptions {
        parallelism,
        timer: None,
        shards: None,
    };
    run_replications_checked(&cfg, &Cca::base(), 5, &opts)
}

#[test]
fn poisoned_seed_yields_typed_error_and_identical_survivors() {
    let serial = poisoned_batch(Parallelism::Serial);
    assert_eq!(serial.outcomes.len(), 5);
    assert_eq!(serial.survivors().count(), 4);
    let failures: Vec<_> = serial.errors().collect();
    assert_eq!(failures.len(), 1);
    let (rep, err) = failures[0];
    assert_eq!(rep, 2, "exactly the poisoned replication fails");
    match err {
        RunError::Panicked { message } => {
            assert!(message.contains("poisoned seed"), "{message}")
        }
        other => panic!("expected Panicked, got {other}"),
    }
    let serial_agg = serial.aggregate.as_ref().expect("survivors remain");
    assert_eq!(serial_agg.replications, 4);

    for parallelism in [Parallelism::Threads(4), Parallelism::Auto] {
        let parallel = poisoned_batch(parallelism);
        assert!(matches!(
            parallel.outcomes[2],
            Err(RunError::Panicked { .. })
        ));
        let agg = parallel.aggregate.as_ref().expect("survivors remain");
        assert_bitwise_identical(serial_agg, agg);
    }
}

#[test]
fn all_seeds_poisoned_leaves_no_aggregate() {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 20;
    cfg.run.poison_seed = Some(cfg.run.seed);
    let batch = run_replications_checked(&cfg, &EdfHp, 1, &ReplicationOptions::serial());
    assert!(batch.aggregate.is_none());
    assert_eq!(batch.errors().count(), 1);
}

#[test]
fn watchdog_trips_on_event_limit() {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 200;
    cfg.run.watchdog = Some(WatchdogConfig {
        max_events: 50,
        max_sim_ms: 1e12,
    });
    match run_simulation_checked(&cfg, &EdfHp) {
        Err(RunError::WatchdogEvents { limit }) => assert_eq!(limit, 50),
        other => panic!("expected WatchdogEvents, got {other:?}"),
    }
}

#[test]
fn watchdog_trips_on_sim_time_limit() {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 200;
    cfg.run.watchdog = Some(WatchdogConfig {
        max_events: u64::MAX,
        max_sim_ms: 5.0,
    });
    match run_simulation_checked(&cfg, &EdfHp) {
        Err(RunError::WatchdogSimTime {
            limit_ms,
            reached_ms,
        }) => {
            assert_eq!(limit_ms, 5.0);
            assert!(reached_ms > limit_ms);
        }
        other => panic!("expected WatchdogSimTime, got {other:?}"),
    }
}

#[test]
fn generous_watchdog_is_invisible() {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = 80;
    let plain = run_simulation_checked(&cfg, &Cca::base()).expect("clean run");
    cfg.run.watchdog = Some(WatchdogConfig::generous(cfg.run.num_transactions));
    let watched = run_simulation_checked(&cfg, &Cca::base()).expect("clean run");
    assert_eq!(plain, watched);
}

#[test]
fn unsurvivable_fault_plan_is_caught_by_watchdog() {
    // With a 100% transient-error rate no disk transfer ever succeeds;
    // the run would retry forever. The watchdog turns the livelock into
    // a typed error instead of a hang.
    let mut cfg = SimConfig::disk_base();
    cfg.run.num_transactions = 20;
    cfg.system.faults = FaultPlan {
        error_prob: 1.0,
        ..FaultPlan::none()
    };
    cfg.run.watchdog = Some(WatchdogConfig {
        max_events: 50_000,
        max_sim_ms: 1e12,
    });
    assert!(matches!(
        run_simulation_checked(&cfg, &EdfHp),
        Err(RunError::WatchdogEvents { .. })
    ));
}

#[test]
fn invalid_config_is_a_typed_error_not_a_panic() {
    let mut cfg = SimConfig::mm_base();
    cfg.workload.num_types = 0;
    match run_simulation_checked(&cfg, &EdfHp) {
        Err(RunError::Config(ConfigError::ZeroTypes)) => {}
        other => panic!("expected Config(ZeroTypes), got {other:?}"),
    }
}

#[test]
fn run_seeds_checked_isolates_closure_panics() {
    let outcomes = run_seeds_checked(4, &ReplicationOptions::threads(4), |rep| {
        if rep == 1 {
            panic!("boom in rep {rep}");
        }
        Ok(rep * 10)
    });
    assert_eq!(outcomes.len(), 4);
    for (rep, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Ok(v) => {
                assert_ne!(rep, 1);
                assert_eq!(*v, rep * 10);
            }
            Err(RunError::Panicked { message }) => {
                assert_eq!(rep, 1);
                assert!(message.contains("boom in rep 1"), "{message}");
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
}
