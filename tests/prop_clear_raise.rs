//! Property test for the clear-repair soundness contract
//! (`Policy::conflict_clear_raise`).
//!
//! When a partially executed transaction `c` clears (commits or aborts),
//! the engine repairs every affected cached priority in place: new key =
//! `nudge_up(old + raise, …)` where `raise` is the policy's declared
//! bound on how much any other transaction's priority can rise from the
//! clear. Soundness requires `raise` ≥ the exact rise for *every* other
//! transaction — a repaired key below the true priority would let the
//! lazy pick path dispatch the wrong transaction, silently diverging
//! from the recompute oracle.
//!
//! This test replays the contract against the policies that declare
//! `ConflictState` dependencies (CCA across weights, EDF-Wait, and both
//! under the `Criticality` wrapper): for arbitrary system states, the
//! engine's own repair formula applied to the pre-clear priority must
//! bound the post-clear priority, compared with plain `>=` on the raw
//! f64s — no tolerance.

use proptest::prelude::*;
use rtx::policies::{Cca, Criticality, EdfWait};
use rtx::preanalysis::{DataSet, ItemId, TypeId};
use rtx::rtdb::engine::nudge_up;
use rtx::rtdb::{Policy, Stage, SystemView, Transaction, TxnId, TxnState};
use rtx::sim::{SimDuration, SimTime};

const DB: u32 = 10;

/// Specification of one transaction's scheduling-relevant state.
#[derive(Debug, Clone)]
struct StateSpec {
    deadline_ms: f64,
    might: Vec<u32>,
    /// Indices into `might` (modulo its length) accessed so far.
    accessed_of_might: Vec<usize>,
    service_ms: f64,
    criticality: u8,
}

fn state_spec() -> impl Strategy<Value = StateSpec> {
    (
        1.0f64..1000.0,
        proptest::collection::vec(0u32..DB, 1..6),
        proptest::collection::vec(0usize..8, 0..6),
        0.0f64..100.0,
        0u8..3,
    )
        .prop_map(
            |(deadline_ms, mut might, accessed_of_might, service_ms, criticality)| {
                might.sort_unstable();
                might.dedup();
                StateSpec {
                    deadline_ms,
                    might,
                    accessed_of_might,
                    service_ms,
                    criticality,
                }
            },
        )
}

fn build(specs: &[StateSpec], runner: Option<usize>, now: SimTime) -> Vec<Transaction> {
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let might: DataSet = spec.might.iter().map(|&x| ItemId(x)).collect();
            let accessed: DataSet = spec
                .accessed_of_might
                .iter()
                .map(|&idx| ItemId(spec.might[idx % spec.might.len()]))
                .collect();
            let (state, stage, burst_start) = if runner == Some(i) {
                // The runner accrues effective service with the clock —
                // the time-dependent term in CCA's raise bound.
                (
                    TxnState::Running,
                    Stage::Compute,
                    now - SimDuration::from_ms(5.0),
                )
            } else {
                (TxnState::Ready, Stage::Lock, SimTime::ZERO)
            };
            Transaction {
                id: TxnId(i as u32),
                ty: TypeId(0),
                arrival: SimTime::ZERO,
                deadline: SimTime::from_ms(spec.deadline_ms),
                resource_time: SimDuration::from_ms(80.0),
                items: spec.might.iter().map(|&x| ItemId(x)).collect(),
                io_pattern: vec![],
                modes: Vec::new(),
                update_time: SimDuration::from_ms(4.0),
                might_access: might,
                state,
                progress: 0,
                stage,
                cpu_left: SimDuration::ZERO,
                burst_start,
                accessed,
                written: DataSet::new(),
                service: SimDuration::from_ms(spec.service_ms),
                restarts: 0,
                waiting_for: None,
                decision: None,
                criticality: spec.criticality,
                doomed: false,
                doomed_at: SimTime::ZERO,
                io_retries: 0,
                retry_token: 0,
                finish: None,
            }
        })
        .collect()
}

/// Check the contract for one policy on one system state: the engine's
/// repair formula applied to every pre-clear priority must bound the
/// post-clear priority, bit-compared.
fn check_policy(
    policy: &dyn Policy,
    txns: &[Transaction],
    cleared: usize,
    now: SimTime,
    abort_cost: SimDuration,
) -> Result<(), TestCaseError> {
    let before_view = SystemView::new(now, txns, abort_cost);
    let raise = policy.conflict_clear_raise(&txns[cleared], &before_view);
    prop_assert!(
        raise.is_finite() && raise >= 0.0,
        "{}: raise bound must be finite and nonnegative, got {raise}",
        policy.name()
    );
    let before: Vec<_> = txns
        .iter()
        .map(|t| policy.priority(t, &before_view))
        .collect();
    // The clear: the transaction leaves the P-list (commit and abort are
    // equivalent from every other transaction's point of view — the
    // penalty term vanishes either way).
    let mut after_txns = txns.to_vec();
    after_txns[cleared].state = TxnState::Committed;
    let after_view = SystemView::new(now, &after_txns, abort_cost);
    for (i, t) in after_txns.iter().enumerate() {
        if i == cleared {
            continue;
        }
        let after = policy.priority(t, &after_view);
        let repaired = nudge_up(before[i].0 + raise, before[i].0.abs().max(raise));
        prop_assert!(
            repaired >= after.0,
            "{}: clear of txn {cleared} raised txn {i} past the declared bound:\n  \
             before {}  raise {raise}  repaired {repaired}  after {}",
            policy.name(),
            before[i].0,
            after.0
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `conflict_clear_raise` soundness across arbitrary system states,
    /// for every ConflictState policy, with and without the Criticality
    /// wrapper.
    #[test]
    fn clear_raise_bounds_every_rise(
        specs in proptest::collection::vec(state_spec(), 2..10),
        cleared_pick in 0usize..16,
        runner_pick in proptest::option::of(0usize..16),
        now_ms in 10.0f64..500.0,
        abort_ms in 0.0f64..10.0,
        weight in 0.0f64..8.0,
    ) {
        let now = SimTime::from_ms(now_ms);
        let runner = runner_pick.map(|idx| idx % specs.len());
        let mut txns = build(&specs, runner, now);
        // Force the cleared transaction to be partially executed — a
        // clear of a lock-free transaction never reaches the repair walk.
        let cleared = cleared_pick % txns.len();
        if txns[cleared].accessed.is_empty() {
            let item = txns[cleared].items[0];
            txns[cleared].accessed = DataSet::from_items([item]);
        }
        let abort_cost = SimDuration::from_ms(abort_ms);
        let policies: Vec<Box<dyn Policy>> = vec![
            Box::new(Cca::new(weight)),
            Box::new(EdfWait),
            Box::new(Criticality::new(Cca::new(weight))),
            Box::new(Criticality::new(EdfWait)),
        ];
        for p in &policies {
            check_policy(p.as_ref(), &txns, cleared, now, abort_cost)?;
        }
    }

    /// For CCA the bound is *tight* on victims: a transaction that was
    /// unsafe against the cleared one rises by exactly the bound (up to
    /// the rounding the nudge covers), and a non-victim does not move.
    #[test]
    fn cca_raise_is_tight_on_victims(
        specs in proptest::collection::vec(state_spec(), 2..10),
        cleared_pick in 0usize..16,
        now_ms in 10.0f64..500.0,
        abort_ms in 0.0f64..10.0,
        weight in 0.1f64..8.0,
    ) {
        let now = SimTime::from_ms(now_ms);
        let mut txns = build(&specs, None, now);
        let cleared = cleared_pick % txns.len();
        if txns[cleared].accessed.is_empty() {
            let item = txns[cleared].items[0];
            txns[cleared].accessed = DataSet::from_items([item]);
        }
        let abort_cost = SimDuration::from_ms(abort_ms);
        let cca = Cca::new(weight);
        let before_view = SystemView::new(now, &txns, abort_cost);
        let raise = cca.conflict_clear_raise(&txns[cleared], &before_view);
        let before: Vec<_> = txns.iter().map(|t| cca.priority(t, &before_view)).collect();
        let victims: Vec<bool> = txns
            .iter()
            .map(|t| {
                t.id != txns[cleared].id
                    && rtx::policies::is_unsafe_with(&txns[cleared], t)
            })
            .collect();
        let mut after_txns = txns.clone();
        after_txns[cleared].state = TxnState::Committed;
        let after_view = SystemView::new(now, &after_txns, abort_cost);
        for (i, t) in after_txns.iter().enumerate() {
            if i == cleared {
                continue;
            }
            let after = cca.priority(t, &after_view);
            let rise = after.0 - before[i].0;
            if victims[i] {
                // Exactly the cleared transaction's term, up to rounding
                // at the magnitudes involved.
                let tol = (before[i].0.abs().max(raise)) * 32.0 * f64::EPSILON;
                prop_assert!(
                    (rise - raise).abs() <= tol,
                    "victim {i}: rise {rise} vs declared {raise}"
                );
            } else {
                prop_assert_eq!(rise, 0.0, "non-victim {} moved", i);
            }
        }
    }
}
