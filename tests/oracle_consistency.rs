//! Consistency between the pre-analysis crate (the paper's formal
//! relations) and the engine's oracle shortcuts: for the straight-line
//! workloads the simulator generates, the full transaction-tree machinery
//! and the engine's set tests must agree exactly.

use rtx::preanalysis::{
    conflict, safety, AnalysisSet, Conflict, Position, Safety, TypeId as PTypeId,
};
use rtx::rtdb::{SimConfig, TypeTable};
use rtx::sim::rng::StreamSeeder;

fn generated_types(seed: u64) -> (TypeTable, AnalysisSet) {
    let cfg = SimConfig::mm_base();
    let table = TypeTable::generate(&cfg, &StreamSeeder::new(seed));
    let programs: Vec<_> = table.types().iter().map(|t| t.to_program()).collect();
    let set = AnalysisSet::new(&programs);
    (table, set)
}

/// For straight-line programs, the tree-based conflict relation collapses
/// to a data-set intersection test — the engine's oracle.
#[test]
fn tree_conflict_equals_set_intersection() {
    let (table, set) = generated_types(11);
    for a in 0..table.len() {
        for b in 0..table.len() {
            let expected = if table.types()[a]
                .data_set
                .intersects(&table.types()[b].data_set)
            {
                Conflict::Conflicts
            } else {
                Conflict::None
            };
            let got = set.type_conflict(PTypeId(a as u32), PTypeId(b as u32));
            assert_eq!(got, expected, "types {a},{b}");
            assert_ne!(
                got,
                Conflict::Conditional,
                "straight-line programs can never conditionally conflict"
            );
        }
    }
}

/// For straight-line programs the safety relation at the root collapses
/// to the same intersection test (fully pessimistic hasaccessed).
#[test]
fn tree_safety_never_conditional_for_straight_line() {
    let (table, set) = generated_types(12);
    let n = table.len().min(20);
    for a in 0..n {
        for b in 0..n {
            let s = set.safety_at(
                PTypeId(a as u32),
                rtx::preanalysis::NodeId::ROOT,
                PTypeId(b as u32),
                rtx::preanalysis::NodeId::ROOT,
            );
            assert_ne!(s, Safety::ConditionallyUnsafe, "types {a},{b}");
            let overlap = table.types()[a]
                .data_set
                .intersects(&table.types()[b].data_set);
            assert_eq!(s == Safety::Unsafe, overlap);
        }
    }
}

/// Direct relation evaluation agrees with the precomputed tables on the
/// generated workload.
#[test]
fn analysis_tables_match_direct_on_generated_workload() {
    let (_, set) = generated_types(13);
    for a in 0..10u32 {
        for b in 0..10u32 {
            let (ta, tb) = (set.tree(PTypeId(a)), set.tree(PTypeId(b)));
            assert_eq!(
                set.type_conflict(PTypeId(a), PTypeId(b)),
                conflict(Position::at_root(ta), Position::at_root(tb))
            );
            assert_eq!(
                set.safety_at(
                    PTypeId(a),
                    rtx::preanalysis::NodeId::ROOT,
                    PTypeId(b),
                    rtx::preanalysis::NodeId::ROOT
                ),
                safety(Position::at_root(ta), Position::at_root(tb))
            );
        }
    }
}

/// The engine tracks `accessed ⊆ might_access` per instance; the
/// pre-analysis guarantees the same inclusion per tree node. Check the
/// generated programs' trees satisfy every paper identity.
#[test]
fn generated_trees_are_single_vertex() {
    let (_, set) = generated_types(14);
    for ty in 0..set.type_count() {
        let tree = set.tree(PTypeId(ty as u32));
        // "Since program B contains no decision points, its transaction
        // tree consists of a single vertex."
        assert_eq!(tree.node_count(), 1);
        let root = tree.root();
        assert_eq!(tree.hasaccessed(root), tree.mightaccess(root));
        assert_eq!(tree.leaves(root), &[root]);
    }
}
