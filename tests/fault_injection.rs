//! Fault-injection robustness: injected disk faults are survived and
//! accounted for, fault-free plans change nothing, admission control
//! decomposes the outcome classes, the lock table never leaks a lock
//! across fault-driven abort/restart, and fault-laden replications stay
//! bit-identical across thread counts.

use proptest::prelude::*;
use rtx_core::{Cca, EdfHp};
use rtx_rtdb::engine::{run_simulation, run_simulation_validated};
use rtx_rtdb::runner::{run_replications_with, AggregateSummary, Parallelism, ReplicationOptions};
use rtx_rtdb::{AdmissionConfig, SimConfig};
use rtx_sim::fault::{Brownout, FaultPlan};

/// A moderately hostile plan: every knob engaged, all survivable.
fn hostile_plan() -> FaultPlan {
    FaultPlan {
        error_prob: 0.25,
        spike_prob: 0.2,
        spike_factor: 3.0,
        retry_budget: 2,
        backoff_base_ms: 2.0,
        backoff_cap_ms: 16.0,
        brownout: Some(Brownout {
            period_ms: 2_000.0,
            duration_ms: 300.0,
            error_prob: 0.6,
            latency_factor: 2.0,
        }),
        cpu: None,
    }
}

fn disk_cfg(n: usize, rate: f64) -> SimConfig {
    let mut cfg = SimConfig::disk_base();
    cfg.run.num_transactions = n;
    cfg.run.arrival_rate_tps = rate;
    cfg
}

#[test]
fn faults_are_injected_and_survived() {
    let mut cfg = disk_cfg(150, 4.0);
    cfg.system.faults = hostile_plan();
    let s = run_simulation(&cfg, &Cca::base());
    assert_eq!(s.committed, 150, "every transaction still commits");
    assert!(s.injected_io_faults > 0, "plan must actually fire");
    assert!(s.io_retries > 0, "failed transfers are retried");
    assert!(s.total_backoff_ms > 0.0, "retries wait out a backoff");
    assert!(s.io_latency_spikes > 0, "spike probability must fire");
}

#[test]
fn tight_retry_budget_exhausts_and_restarts() {
    let mut cfg = disk_cfg(120, 4.0);
    cfg.system.faults = FaultPlan {
        error_prob: 0.5,
        retry_budget: 1,
        ..FaultPlan::none()
    };
    let s = run_simulation(&cfg, &EdfHp);
    assert_eq!(s.committed, 120);
    assert!(
        s.io_exhausted_aborts > 0,
        "a 50% error rate against a budget of 1 must exhaust sometimes"
    );
    // Exhaustion restarts the transaction like an HP victim.
    assert!(s.restarts_total >= s.io_exhausted_aborts);
}

#[test]
fn benign_brownout_is_invisible() {
    // A brownout that neither fails nor slows anything consumes fault
    // RNG draws but must not perturb the simulation: the fault stream
    // is isolated from the workload streams.
    let cfg = disk_cfg(120, 4.0);
    let baseline = run_simulation(&cfg, &Cca::base());

    let mut benign = cfg.clone();
    benign.system.faults = FaultPlan {
        brownout: Some(Brownout {
            period_ms: 100.0,
            duration_ms: 100.0,
            error_prob: 0.0,
            latency_factor: 1.0,
        }),
        ..FaultPlan::none()
    };
    assert!(!benign.system.faults.is_none(), "injector must engage");
    let s = run_simulation(&benign, &Cca::base());
    assert_eq!(s, baseline, "benign plan must be byte-identical");
}

#[test]
fn admission_control_decomposes_outcomes() {
    // Well past disk saturation, with a safety margin strict enough to
    // reject the tight-slack tail of the workload (slack is uniform on
    // [0.2, 8]; a 3× margin rejects slack below ~2 on arrival).
    let mut cfg = disk_cfg(200, 8.0);
    cfg.system.admission = Some(AdmissionConfig::Static { safety_factor: 3.0 });
    let s = run_simulation_validated(&cfg, &Cca::base());
    assert!(s.rejected > 0, "overload must trigger rejections");
    assert_eq!(
        s.committed + s.rejected,
        200,
        "every transaction either commits or is rejected"
    );
    assert!(s.rejected_percent > 0.0 && s.rejected_percent < 100.0);
}

fn assert_bitwise_identical(a: &AggregateSummary, b: &AggregateSummary) {
    for (la, lb) in [
        (a.miss_percent, b.miss_percent),
        (a.mean_lateness_ms, b.mean_lateness_ms),
        (a.restarts_per_txn, b.restarts_per_txn),
        (a.rejected_percent, b.rejected_percent),
        (a.injected_io_faults, b.injected_io_faults),
        (a.io_retries, b.io_retries),
        (a.io_exhausted_aborts, b.io_exhausted_aborts),
        (a.wasted_disk_hold_ms, b.wasted_disk_hold_ms),
    ] {
        assert_eq!(la.mean.to_bits(), lb.mean.to_bits());
        assert_eq!(la.half_width.to_bits(), lb.half_width.to_bits());
    }
}

#[test]
fn fault_laden_replications_identical_across_thread_counts() {
    let mut cfg = disk_cfg(80, 5.0);
    cfg.system.faults = hostile_plan();
    cfg.system.admission = Some(AdmissionConfig::lenient());
    let serial = run_replications_with(&cfg, &Cca::base(), 6, &ReplicationOptions::serial());
    assert!(
        serial.injected_io_faults.mean > 0.0,
        "the comparison must exercise the fault paths"
    );
    for parallelism in [Parallelism::Threads(4), Parallelism::Auto] {
        let opts = ReplicationOptions {
            parallelism,
            timer: None,
            shards: None,
        };
        let parallel = run_replications_with(&cfg, &Cca::base(), 6, &opts);
        assert_bitwise_identical(&serial, &parallel);
    }
}

/// Strategy over survivable fault plans (error probability bounded away
/// from 1 so every run terminates).
fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0.0f64..0.5,
        0.0f64..0.5,
        1.0f64..4.0,
        0u32..4,
        0.5f64..5.0,
        proptest::option::of((100.0f64..2_000.0, 0.0f64..1.0, 1.0f64..3.0)),
    )
        .prop_map(
            |(error_prob, spike_prob, spike_factor, retry_budget, base, brown)| FaultPlan {
                error_prob,
                spike_prob,
                spike_factor,
                retry_budget,
                backoff_base_ms: base,
                backoff_cap_ms: base * 8.0,
                brownout: brown.map(|(period_ms, err, latency_factor)| Brownout {
                    period_ms,
                    duration_ms: period_ms / 4.0,
                    error_prob: err,
                    latency_factor,
                }),
                cpu: None,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under arbitrary survivable fault plans the lock table never leaks
    /// a lock across fault-driven abort/restart: `run_simulation_validated`
    /// re-checks the lock/accessed-set invariants after every event and
    /// asserts committed/rejected transactions hold nothing.
    #[test]
    fn lock_table_never_leaks_under_faults(
        plan in fault_plan(),
        seed in 0u64..32,
        admit in any::<bool>(),
    ) {
        prop_assert!(plan.validate().is_ok());
        let mut cfg = disk_cfg(40, 5.0);
        cfg.run.seed = 1000 + seed;
        cfg.system.faults = plan;
        if admit {
            cfg.system.admission = Some(AdmissionConfig::lenient());
        }
        let s = run_simulation_validated(&cfg, &Cca::base());
        prop_assert_eq!(s.committed + s.rejected, 40);
        prop_assert!((0.0..=100.0).contains(&s.miss_percent));
        prop_assert!(s.wasted_disk_hold_ms >= 0.0);
        prop_assert!(s.total_backoff_ms >= 0.0);
    }

    /// Identical fault plans and seeds give byte-identical summaries.
    #[test]
    fn fault_runs_deterministic(plan in fault_plan(), seed in 0u64..16) {
        prop_assert!(plan.validate().is_ok());
        let mut cfg = disk_cfg(30, 5.0);
        cfg.run.seed = seed;
        cfg.system.faults = plan;
        let a = run_simulation(&cfg, &Cca::base());
        let b = run_simulation(&cfg, &Cca::base());
        prop_assert_eq!(a, b);
    }
}
