//! The paper's quantitative claims, asserted as coarse, seed-averaged
//! bounds (exact values are in EXPERIMENTS.md; these tests pin the
//! *direction and rough magnitude* so regressions are caught).

use rtx::policies::{Cca, EdfHp};
use rtx::rtdb::{run_replications, SimConfig};

fn mm(rate: f64, n: usize) -> SimConfig {
    let mut cfg = SimConfig::mm_base();
    cfg.run.arrival_rate_tps = rate;
    cfg.run.num_transactions = n;
    cfg
}

fn disk(rate: f64, n: usize) -> SimConfig {
    let mut cfg = SimConfig::disk_base();
    cfg.run.arrival_rate_tps = rate;
    cfg.run.num_transactions = n;
    cfg
}

/// §4.1 / Figure 4.a–b: CCA beats EDF-HP on miss percent and mean
/// lateness on the main-memory base workload under load.
#[test]
fn cca_beats_edf_hp_main_memory() {
    let cfg = mm(8.0, 500);
    let edf = run_replications(&cfg, &EdfHp, 10);
    let cca = run_replications(&cfg, &Cca::base(), 10);
    assert!(
        cca.miss_percent.mean < edf.miss_percent.mean,
        "miss: CCA {} vs EDF {}",
        cca.miss_percent.mean,
        edf.miss_percent.mean
    );
    assert!(
        cca.mean_lateness_ms.mean < edf.mean_lateness_ms.mean,
        "lateness: CCA {} vs EDF {}",
        cca.mean_lateness_ms.mean,
        edf.mean_lateness_ms.mean
    );
    assert!(
        cca.restarts_per_txn.mean <= edf.restarts_per_txn.mean,
        "CCA makes better abort decisions"
    );
}

/// §5.1 / Figure 5.b–d: on disk the improvement is larger — "the
/// improvement of CCA over EDF-HP in terms of mean lateness is
/// remarkable".
#[test]
fn cca_beats_edf_hp_disk_resident() {
    let cfg = disk(5.0, 200);
    let edf = run_replications(&cfg, &EdfHp, 10);
    let cca = run_replications(&cfg, &Cca::base(), 10);
    assert!(cca.miss_percent.mean < edf.miss_percent.mean);
    // Paper: up to 95% lateness improvement; require at least 30% here.
    let improve =
        (edf.mean_lateness_ms.mean - cca.mean_lateness_ms.mean) / edf.mean_lateness_ms.mean;
    assert!(
        improve > 0.3,
        "disk lateness improvement only {:.0}%",
        improve * 100.0
    );
}

/// §5.1 / Figure 5.c: EDF-HP's restarts grow monotonically with load on
/// disk workloads while CCA's stay flat — the noncontributing-execution
/// mechanism.
#[test]
fn disk_restart_divergence_with_load() {
    let lo_cfg = disk(2.0, 200);
    let hi_cfg = disk(6.0, 200);
    let edf_lo = run_replications(&lo_cfg, &EdfHp, 10);
    let edf_hi = run_replications(&hi_cfg, &EdfHp, 10);
    let cca_hi = run_replications(&hi_cfg, &Cca::base(), 10);
    assert!(
        edf_hi.restarts_per_txn.mean > 2.0 * edf_lo.restarts_per_txn.mean,
        "EDF restarts should climb steeply: {} -> {}",
        edf_lo.restarts_per_txn.mean,
        edf_hi.restarts_per_txn.mean
    );
    assert!(
        cca_hi.restarts_per_txn.mean < edf_hi.restarts_per_txn.mean / 2.0,
        "CCA restarts should stay far below EDF at high load"
    );
    // The divergence is driven by noncontributing executions, which the
    // IOwait-schedule step eliminates almost entirely.
    assert!(cca_hi.noncontributing_aborts.mean < edf_hi.noncontributing_aborts.mean / 10.0);
}

/// §4.1: "The average number of partially executed transactions … is 1 to
/// 2 … Thus scheduling overhead of the CCA does not cause a problem."
#[test]
fn plist_length_is_one_to_two() {
    for rate in [2.0, 6.0, 10.0] {
        let cfg = mm(rate, 400);
        let cca = run_replications(&cfg, &Cca::base(), 5);
        assert!(
            cca.mean_plist_len.mean < 2.5,
            "rate {rate}: mean P-list {} exceeds the paper's 1-2 range",
            cca.mean_plist_len.mean
        );
    }
}

/// §4.3 / Figure 4.f: growing the database reduces contention and miss
/// rates, and CCA stays at or below EDF-HP throughout.
#[test]
fn larger_database_reduces_misses() {
    let mut small = mm(10.0, 300);
    small.workload.db_size = 100;
    let mut large = mm(10.0, 300);
    large.workload.db_size = 1000;
    let edf_small = run_replications(&small, &EdfHp, 5);
    let edf_large = run_replications(&large, &EdfHp, 5);
    assert!(
        edf_large.miss_percent.mean <= edf_small.miss_percent.mean,
        "{} vs {}",
        edf_large.miss_percent.mean,
        edf_small.miss_percent.mean
    );
    let cca_small = run_replications(&small, &Cca::base(), 5);
    assert!(cca_small.miss_percent.mean <= edf_small.miss_percent.mean + 1e-9);
}

/// §5: disk utilization stays under the paper's 62.5% bound for the
/// admissible arrival range, and measured utilization roughly tracks the
/// open-system estimate λ × E[IO per txn].
#[test]
fn disk_utilization_tracks_offered_load() {
    for rate in [2.0, 4.0, 6.0] {
        let cfg = disk(rate, 200);
        let cca = run_replications(&cfg, &Cca::base(), 5);
        let estimate = cfg.disk_utilization_at(rate);
        assert!(
            cca.disk_utilization.mean < 0.8,
            "rate {rate}: utilization {}",
            cca.disk_utilization.mean
        );
        assert!(
            cca.disk_utilization.mean > 0.5 * estimate,
            "rate {rate}: measured {} vs estimate {estimate}",
            cca.disk_utilization.mean
        );
    }
}

/// Figure 5.a / 5.f: performance is insensitive to the penalty weight
/// over a wide range — every non-zero weight performs within a band, and
/// none is catastrophically worse than w = 1.
#[test]
fn penalty_weight_stability() {
    let cfg = mm(8.0, 400);
    let base = run_replications(&cfg, &Cca::new(1.0), 8).miss_percent.mean;
    for w in [0.5, 2.0, 5.0, 10.0, 20.0] {
        let m = run_replications(&cfg, &Cca::new(w), 8).miss_percent.mean;
        assert!(m < base + 12.0, "w={w}: miss {m}% far above base {base}%");
    }
}

/// Soft real time end to end: no transaction is ever dropped, whatever
/// the policy or load.
#[test]
fn soft_deadlines_commit_everything() {
    use rtx::policies::{EdfWait, Fcfs, Lsf};
    let cfg = mm(10.0, 200);
    for policy in [
        &Cca::base() as &dyn rtx::rtdb::Policy,
        &EdfHp,
        &EdfWait,
        &Lsf,
        &Fcfs,
    ] {
        let agg = run_replications(&cfg, policy, 3);
        assert_eq!(agg.replications, 3, "{}", policy.name());
    }
}
