//! Watch the scheduler think: trace a small disk-resident run under
//! EDF-HP and CCA and print the decision log side by side.
//!
//! ```text
//! cargo run --release --example schedule_trace
//! ```
//!
//! The interesting pattern to look for under EDF-HP is the §3.3.2
//! *noncontributing execution*: a transaction dispatched "via
//! IOwait-schedule" that is later named as the victim of an abort when
//! the IO-blocked transaction returns. Under CCA that pattern is absent —
//! secondaries are chosen to be compatible with every partially executed
//! transaction.

use rtx::policies::{Cca, EdfHp};
use rtx::rtdb::{run_simulation_traced, SimConfig, TraceEvent};

fn main() {
    let mut cfg = SimConfig::disk_base();
    cfg.run.arrival_rate_tps = 5.0;
    cfg.run.num_transactions = 12;
    cfg.run.seed = 8;

    for policy_name in ["EDF-HP", "CCA"] {
        let (summary, trace) = if policy_name == "CCA" {
            run_simulation_traced(&cfg, &Cca::base())
        } else {
            run_simulation_traced(&cfg, &EdfHp)
        };

        println!("=== {policy_name}: {} events ===", trace.len());
        for record in trace.records() {
            println!("{record}");
        }
        println!(
            "\n{policy_name} summary: miss {:.1}%  lateness {:.1} ms  \
             restarts {}  noncontributing {}  lock waits {}\n",
            summary.miss_percent,
            summary.mean_lateness_ms,
            summary.restarts_total,
            summary.noncontributing_aborts,
            summary.lock_waits,
        );

        // Quantify the §3.3.2 pattern: secondaries that later got aborted.
        let secondaries: Vec<_> = trace
            .records()
            .iter()
            .filter_map(|r| match r.event {
                TraceEvent::Dispatch {
                    txn,
                    secondary: true,
                } => Some(txn),
                _ => None,
            })
            .collect();
        let aborted_secondaries = trace
            .records()
            .iter()
            .filter(|r| {
                matches!(r.event, TraceEvent::Abort { victim, .. }
                    if secondaries.contains(&victim))
            })
            .count();
        println!(
            "{policy_name}: {} secondary dispatches, {} of them later aborted\n",
            secondaries.len(),
            aborted_secondaries
        );
    }
}
