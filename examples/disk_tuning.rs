//! Disk-resident database + penalty-weight tuning (§5 and Figure 5.f).
//!
//! ```text
//! cargo run --release --example disk_tuning
//! ```
//!
//! Runs the Table 2 disk-resident configuration at 4 tps, sweeps the
//! penalty weight `w` from 0 (= EDF-HP priorities) to 20, and prints the
//! miss percent, lateness and noncontributing aborts for each. It also
//! demonstrates the `IOwait-schedule` effect: CCA fills IO waits only
//! with compatible transactions, so its noncontributing aborts are ~0
//! while EDF-HP's climb with load.

use rtx::policies::{Cca, EdfHp};
use rtx::rtdb::{run_replications, SimConfig};

fn main() {
    let mut cfg = SimConfig::disk_base();
    cfg.run.arrival_rate_tps = 4.0;
    cfg.run.num_transactions = 300;
    let reps = 10;

    println!(
        "Disk-resident RTDB (Table 2), 4 tps, disk utilization bound {:.1}%\n",
        cfg.disk_utilization_at(cfg.cpu_capacity_tps()) * 100.0
    );

    let edf = run_replications(&cfg, &EdfHp, reps);
    println!(
        "EDF-HP reference: miss {:.2}%  lateness {:.1} ms  \
         restarts/txn {:.3}  noncontributing aborts {:.1}  lock waits {:.1}\n",
        edf.miss_percent.mean,
        edf.mean_lateness_ms.mean,
        edf.restarts_per_txn.mean,
        edf.noncontributing_aborts.mean,
        0.0
    );

    println!(
        "{:>8}  {:>8}  {:>12}  {:>13}  {:>12}",
        "w", "miss %", "lateness ms", "restarts/txn", "noncontrib"
    );
    println!("{}", "-".repeat(62));
    for w in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0] {
        let cca = run_replications(&cfg, &Cca::new(w), reps);
        println!(
            "{:>8}  {:>8.2}  {:>12.1}  {:>13.3}  {:>12.1}",
            w,
            cca.miss_percent.mean,
            cca.mean_lateness_ms.mean,
            cca.restarts_per_txn.mean,
            cca.noncontributing_aborts.mean,
        );
    }
    println!(
        "\nThe performance plateau across w confirms Figure 5.f: the exact \
         weight barely\nmatters once it is non-zero — \"the performance of \
         the system is not sensitive to\nthe selection of penalty-weight \
         within a wide range\"."
    );
}
