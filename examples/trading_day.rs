//! A hand-built scenario: a trading system's main-memory RTDB.
//!
//! ```text
//! cargo run --release --example trading_day
//! ```
//!
//! Three transaction classes share 40 instrument records:
//!
//! * **quote updates** — tiny (2 updates), tight deadlines, frequent;
//! * **order matches** — medium (8 updates), moderate deadlines;
//! * **portfolio rebalances** — long (25 updates), loose deadlines.
//!
//! The mix stresses exactly the situation §3.2 motivates: under EDF-HP an
//! urgent quote update arriving mid-rebalance aborts the rebalance and
//! throws away a long prefix of work; CCA prices that loss and often lets
//! the rebalance finish first. The example builds the workload by hand
//! with [`ReplaySource`] and compares the policies at rising load.

use rtx::policies::{Cca, EdfHp};
use rtx::preanalysis::TypeId;
use rtx::preanalysis::{DataSet, ItemId};
use rtx::rtdb::Policy;
use rtx::rtdb::{
    run_simulation_from, ReplaySource, SimConfig, Stage, Transaction, TxnId, TxnState,
};
use rtx::sim::dist::{exponential, sample_distinct, uniform_range};
use rtx::sim::rng::StreamSeeder;
use rtx::sim::{SimDuration, SimTime};

const DB_SIZE: u64 = 40;

struct Class {
    updates: usize,
    update_ms: f64,
    slack: (f64, f64),
    share: f64, // fraction of arrivals
}

const CLASSES: [Class; 3] = [
    Class {
        updates: 2,
        update_ms: 1.0,
        slack: (0.5, 2.0),
        share: 0.6,
    }, // quote
    Class {
        updates: 8,
        update_ms: 2.0,
        slack: (1.0, 4.0),
        share: 0.3,
    }, // match
    Class {
        updates: 25,
        update_ms: 4.0,
        slack: (3.0, 10.0),
        share: 0.1,
    }, // rebalance
];

fn build_day(rate_tps: f64, n: usize, seed: u64) -> Vec<Transaction> {
    let seeder = StreamSeeder::new(seed);
    let mut arr = seeder.stream("arrivals");
    let mut pick = seeder.stream("class");
    let mut items_rng = seeder.stream("items");
    let mut slack_rng = seeder.stream("slack");
    let mut clock = SimTime::ZERO;
    (0..n)
        .map(|i| {
            clock += SimDuration::from_secs(exponential(&mut arr, 1.0 / rate_tps));
            // Pick a class by share.
            let u = rtx::sim::dist::uniform_unit(&mut pick);
            let mut acc = 0.0;
            let mut class = &CLASSES[0];
            for c in &CLASSES {
                acc += c.share;
                if u < acc {
                    class = c;
                    break;
                }
            }
            let items: Vec<ItemId> = sample_distinct(&mut items_rng, DB_SIZE, class.updates)
                .into_iter()
                .map(|x| ItemId(x as u32))
                .collect();
            let update_time = SimDuration::from_ms(class.update_ms);
            let resource_time = update_time * items.len() as u64;
            let slack = uniform_range(&mut slack_rng, class.slack.0, class.slack.1);
            Transaction {
                id: TxnId(i as u32),
                ty: TypeId(CLASSES.iter().position(|c| std::ptr::eq(c, class)).unwrap() as u32),
                arrival: clock,
                deadline: clock + resource_time.scale(1.0 + slack),
                resource_time,
                might_access: items.iter().copied().collect(),
                items,
                io_pattern: vec![],
                modes: Vec::new(),
                update_time,
                state: TxnState::Ready,
                progress: 0,
                stage: Stage::Lock,
                cpu_left: SimDuration::ZERO,
                burst_start: SimTime::ZERO,
                accessed: DataSet::new(),
                written: DataSet::new(),
                service: SimDuration::ZERO,
                restarts: 0,
                waiting_for: None,
                decision: None,
                criticality: 0,
                doomed: false,
                doomed_at: SimTime::ZERO,
                io_retries: 0,
                retry_token: 0,
                finish: None,
            }
        })
        .collect()
}

fn run(rate: f64, policy: &dyn Policy, seeds: u64) -> (f64, f64, f64) {
    // The engine config only needs the resource model; arrival/type fields
    // are bypassed by the custom source.
    let mut cfg = SimConfig::mm_base();
    cfg.workload.db_size = DB_SIZE;
    cfg.system.abort_cost_ms = 2.0;
    let n = 600;
    let (mut miss, mut late, mut restarts) = (0.0, 0.0, 0.0);
    for seed in 0..seeds {
        let txns = build_day(rate, n, seed);
        let mut source = ReplaySource::new(txns);
        let s = run_simulation_from(&cfg, policy, &mut source, n);
        miss += s.miss_percent;
        late += s.mean_lateness_ms;
        restarts += s.restarts_per_txn;
    }
    let k = seeds as f64;
    (miss / k, late / k, restarts / k)
}

fn main() {
    println!("Trading-day scenario: 60% quotes / 30% matches / 10% rebalances");
    println!("over a {DB_SIZE}-record instrument table, 600 txns x 5 seeds\n");
    println!(
        "{:>9}  {:>21}  {:>21}  {:>19}",
        "load", "miss % (EDF | CCA)", "lateness ms (EDF|CCA)", "restarts (EDF|CCA)"
    );
    println!("{}", "-".repeat(78));
    for rate in [20.0, 40.0, 60.0, 80.0] {
        let edf = run(rate, &EdfHp, 5);
        let cca = run(rate, &Cca::base(), 5);
        println!(
            "{:>6} tps  {:>9.2} | {:>9.2}  {:>9.1} | {:>9.1}  {:>8.3} | {:>8.3}",
            rate, edf.0, cca.0, edf.1, cca.1, edf.2, cca.2
        );
    }
    println!(
        "\nCCA protects the long rebalances' completed work from urgent \
         quote bursts,\ncutting restarts and the lateness tail."
    );
}
