//! Walk through the paper's Figures 1–3: transaction pre-analysis on a
//! small banking workload with a decision point.
//!
//! ```text
//! cargo run --release --example figure1_preanalysis
//! ```
//!
//! Program `audit` mirrors the paper's program A — it reads a balance and
//! then, depending on its value, touches either the checking tables or
//! the savings tables. Program `transfer` mirrors program B. The example
//! prints the transaction trees, the per-node sets, the conflict relation
//! at each refinement state, and a cursor walk showing the safety
//! relation changing as `audit` executes.

use rtx::preanalysis::{
    conflict, parse_programs, safety, Conflict, Cursor, NextAction, Position, TransactionTree,
};

const PROGRAMS: &str = r#"
    # Figure 1, dressed as a tiny banking workload.
    program audit {
        access balance
        branch {
            { access checking_1 checking_2 checking_3 }   # balance > 100
            { access savings_1 savings_2 savings_3 }      # otherwise
        }
    }
    program transfer {
        access checking_1 checking_2 checking_3
    }
"#;

fn main() {
    let (programs, items) = parse_programs(PROGRAMS).expect("programs parse");
    let audit = TransactionTree::from_program(&programs[0]);
    let transfer = TransactionTree::from_program(&programs[1]);

    println!("--- transaction trees (Figure 2) ---\n");
    println!("{audit}");
    println!("{transfer}");

    println!("--- conflict relation by refinement state ---\n");
    let t_root = Position::at_root(&transfer);
    for node in audit.node_ids() {
        let rel = conflict(Position::at(&audit, node), t_root);
        println!("audit@{:<7} vs transfer: {}", audit.label(node), rel);
    }
    // The paper's three cases:
    assert_eq!(
        conflict(Position::at_root(&audit), t_root),
        Conflict::Conditional
    );
    assert_eq!(
        conflict(Position::at(&audit, audit.find("audita").unwrap()), t_root),
        Conflict::Conflicts
    );
    assert_eq!(
        conflict(Position::at(&audit, audit.find("auditb").unwrap()), t_root),
        Conflict::None
    );

    println!("\n--- executing audit along the savings branch ---\n");
    let mut cursor = Cursor::new(&audit);
    loop {
        let s = safety(cursor.position(), t_root);
        println!(
            "at {:<8} accessed {:<30} safety w.r.t. transfer: {}",
            audit.label(cursor.node()),
            format!("{}", cursor.accessed()),
            s
        );
        match cursor.next_action() {
            NextAction::Access(item) => {
                let name = items.name(item).unwrap_or("?");
                println!("    access {name}");
                cursor.advance_access();
            }
            NextAction::Decide(_) => {
                println!("    decision point: balance <= 100, take savings branch");
                cursor.choose(1);
            }
            NextAction::Finished => break,
        }
    }
    println!(
        "\naudit finished on the savings branch; final mightaccess = {}",
        cursor.mightaccess()
    );
    println!(
        "safety of audit w.r.t. transfer at the end: {} \
         (no rollback would ever be needed)",
        safety(cursor.position(), t_root)
    );
}
