//! Quickstart: compare CCA against EDF-HP on the paper's Table 1 workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Runs the main-memory base configuration at a moderately overloaded
//! arrival rate under both policies (10 seeds each) and prints the
//! metrics the paper plots: miss percent, mean lateness and restarts per
//! transaction.

use rtx::policies::{Cca, EdfHp};
use rtx::rtdb::{improvement_percent, run_replications, SimConfig};

fn main() {
    let mut cfg = SimConfig::mm_base();
    cfg.run.arrival_rate_tps = 8.0;
    cfg.run.num_transactions = 500;

    println!(
        "Main-memory RTDB, Table 1 parameters, {} tps arrivals \
         (CPU capacity {:.1} tps), {} transactions x 10 seeds\n",
        cfg.run.arrival_rate_tps,
        cfg.cpu_capacity_tps(),
        cfg.run.num_transactions
    );

    let edf = run_replications(&cfg, &EdfHp, 10);
    let cca = run_replications(&cfg, &Cca::base(), 10);

    println!("{:<22} {:>14} {:>14}", "metric", "EDF-HP", "CCA(w=1)");
    println!("{}", "-".repeat(52));
    println!(
        "{:<22} {:>14} {:>14}",
        "miss percent",
        format!("{}", edf.miss_percent),
        format!("{}", cca.miss_percent)
    );
    println!(
        "{:<22} {:>14} {:>14}",
        "mean lateness (ms)",
        format!("{}", edf.mean_lateness_ms),
        format!("{}", cca.mean_lateness_ms)
    );
    println!(
        "{:<22} {:>14} {:>14}",
        "restarts / txn",
        format!("{}", edf.restarts_per_txn),
        format!("{}", cca.restarts_per_txn)
    );
    println!(
        "{:<22} {:>14} {:>14}",
        "mean P-list length",
        format!("{}", edf.mean_plist_len),
        format!("{}", cca.mean_plist_len)
    );

    println!(
        "\nimprovement of CCA over EDF-HP: {:.1}% fewer misses, \
         {:.1}% less lateness",
        improvement_percent(edf.miss_percent.mean, cca.miss_percent.mean),
        improvement_percent(edf.mean_lateness_ms.mean, cca.mean_lateness_ms.mean)
    );
}
